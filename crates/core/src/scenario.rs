//! One-stop scenario runner: topology + worm + deployment → propagation
//! curves, via the simulated and (where available) analytic paths.

use crate::strategy::{build_plan, Deployment, RateLimitParams};
use dynaquar_epidemic::logistic::Logistic;
use dynaquar_epidemic::timeto::CurveSummary;
use dynaquar_epidemic::TimeSeries;
use dynaquar_netsim::config::{
    CheckpointPolicy, ImmunizationConfig, QuarantineConfig, SimConfig, WormBehavior,
};
use dynaquar_netsim::faults::FaultPlan;
use dynaquar_netsim::metrics::PacketAccounting;
use dynaquar_netsim::runner::run_averaged_parallel;
use dynaquar_netsim::strategy::SimStrategy;
use dynaquar_netsim::ShardSpec;
use dynaquar_netsim::World;
use dynaquar_parallel::ParallelConfig;
use dynaquar_topology::generators;
use dynaquar_topology::lazy::RoutingKind;
use serde::{Deserialize, Serialize};

/// Which topology a scenario runs on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TopologySpec {
    /// A star with this many leaves (Section 4).
    Star {
        /// Number of leaf nodes.
        leaves: usize,
    },
    /// A Barabási–Albert power-law graph (Section 5.4), roles assigned
    /// top-5 % backbone / next-10 % edge.
    PowerLaw {
        /// Number of nodes.
        nodes: usize,
        /// Edges attached per new node.
        edges_per_node: usize,
        /// Generator seed.
        seed: u64,
    },
    /// A hierarchical subnet topology (Figure 5/6 experiments).
    Subnets {
        /// Backbone core routers.
        backbone: usize,
        /// Number of subnets.
        subnets: usize,
        /// End hosts per subnet.
        hosts_per_subnet: usize,
    },
}

impl TopologySpec {
    /// Materializes the world with automatic routing-backend selection
    /// ([`RoutingKind::Auto`]: dense all-pairs table for paper-scale
    /// graphs; above 4096 nodes the two-level hierarchical backend when
    /// degree-1 peeling leaves a dense-sized core — subnet worlds
    /// collapse to their backbone — or memory-bounded lazy BFS
    /// otherwise).
    ///
    /// # Panics
    ///
    /// Panics on degenerate sizes (zero leaves/subnets/hosts).
    pub fn build(&self) -> World {
        self.build_with(RoutingKind::Auto)
    }

    /// [`TopologySpec::build`] with an explicit routing backend choice.
    ///
    /// # Panics
    ///
    /// Panics on degenerate sizes (zero leaves/subnets/hosts).
    pub fn build_with(&self, routing: RoutingKind) -> World {
        match *self {
            TopologySpec::Star { leaves } => World::from_star_with(
                generators::star(leaves).expect("valid star size"),
                routing,
            ),
            TopologySpec::PowerLaw {
                nodes,
                edges_per_node,
                seed,
            } => World::from_power_law_with(
                generators::barabasi_albert(nodes, edges_per_node, seed)
                    .expect("valid power-law parameters"),
                0.05,
                0.10,
                routing,
            ),
            TopologySpec::Subnets {
                backbone,
                subnets,
                hosts_per_subnet,
            } => World::from_subnets_with(
                generators::SubnetTopologyBuilder::new()
                    .backbone_routers(backbone)
                    .subnets(subnets)
                    .hosts_per_subnet(hosts_per_subnet)
                    .build()
                    .expect("valid subnet parameters"),
                routing,
            ),
        }
    }
}

/// A complete experiment description.
///
/// # Example
///
/// ```
/// use dynaquar_core::{Deployment, Scenario, TopologySpec};
///
/// let outcome = Scenario::new(TopologySpec::Star { leaves: 49 })
///     .beta(0.8)
///     .horizon(60)
///     .deployment(Deployment::None)
///     .runs(2)
///     .run_simulated();
/// assert!(outcome.infected.final_value() > 0.9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    pub(crate) topology: TopologySpec,
    pub(crate) behavior: WormBehavior,
    pub(crate) beta: f64,
    pub(crate) horizon: u64,
    pub(crate) initial_infected: usize,
    pub(crate) deployment: Deployment,
    pub(crate) params: RateLimitParams,
    pub(crate) immunization: Option<ImmunizationConfig>,
    pub(crate) quarantine: Option<QuarantineConfig>,
    pub(crate) faults: FaultPlan,
    pub(crate) runs: usize,
    pub(crate) seed: u64,
    pub(crate) parallelism: Option<usize>,
    pub(crate) routing: RoutingKind,
    pub(crate) strategy: SimStrategy,
    pub(crate) shards: ShardSpec,
    pub(crate) checkpoint: Option<CheckpointPolicy>,
}

impl Scenario {
    /// Creates a scenario with paper defaults: random worm, β = 0.8, one
    /// initial infection, horizon 50, no rate limiting, 10 averaged runs.
    pub fn new(topology: TopologySpec) -> Self {
        Scenario {
            topology,
            behavior: WormBehavior::random(),
            beta: 0.8,
            horizon: 50,
            initial_infected: 1,
            deployment: Deployment::None,
            params: RateLimitParams::default(),
            immunization: None,
            quarantine: None,
            faults: FaultPlan::none(),
            runs: 10,
            seed: 0,
            parallelism: None,
            routing: RoutingKind::Auto,
            strategy: SimStrategy::Auto,
            shards: ShardSpec::Auto,
            checkpoint: None,
        }
    }

    /// Sets the worm behaviour.
    pub fn behavior(mut self, behavior: WormBehavior) -> Self {
        self.behavior = behavior;
        self
    }

    /// Sets the infection probability β.
    pub fn beta(mut self, beta: f64) -> Self {
        self.beta = beta;
        self
    }

    /// Sets the horizon in ticks.
    pub fn horizon(mut self, ticks: u64) -> Self {
        self.horizon = ticks;
        self
    }

    /// Sets the number of initially infected hosts.
    pub fn initial_infected(mut self, count: usize) -> Self {
        self.initial_infected = count;
        self
    }

    /// Sets the deployment strategy.
    pub fn deployment(mut self, deployment: Deployment) -> Self {
        self.deployment = deployment;
        self
    }

    /// Overrides the rate-limit mechanism parameters.
    pub fn params(mut self, params: RateLimitParams) -> Self {
        self.params = params;
        self
    }

    /// Enables delayed immunization.
    pub fn immunization(mut self, config: ImmunizationConfig) -> Self {
        self.immunization = Some(config);
        self
    }

    /// Enables the paper's titular detection-driven *dynamic
    /// quarantine*: a host whose delaying egress filter accumulates
    /// `queue_threshold` pending scans is cut off on the spot. Only
    /// meaningful when the deployment installs *delaying* host filters
    /// (see [`RateLimitParams::host_release_period_ticks`]) — the
    /// throttle queue is the detector.
    pub fn quarantine(mut self, config: QuarantineConfig) -> Self {
        self.quarantine = Some(config);
        self
    }

    /// Injects a deterministic fault plan (outages, loss, broken
    /// detectors) into every run of the scenario. The default is
    /// [`FaultPlan::none`], which leaves the simulation bit-identical
    /// to a fault-free engine.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the number of averaged runs.
    ///
    /// # Panics
    ///
    /// Panics if `runs == 0`.
    pub fn runs(mut self, runs: usize) -> Self {
        assert!(runs > 0, "need at least one run");
        self.runs = runs;
        self
    }

    /// Sets the base RNG seed (run `k` uses `seed + k`).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Picks the routing backend for worlds this scenario builds itself
    /// (`run_simulated`, `analytic_baseline`). The default
    /// [`RoutingKind::Auto`] keeps paper-scale topologies on the dense
    /// all-pairs table and switches large worlds to the two-level
    /// hierarchical backend (when degree-1 peeling leaves a dense-sized
    /// core) or the memory-bounded lazy backend; all backends produce
    /// bit-identical next hops, so this knob trades memory for
    /// routing-cache work without changing any curve.
    pub fn routing(mut self, routing: RoutingKind) -> Self {
        self.routing = routing;
        self
    }

    /// Picks the engine stepping strategy for every run of the
    /// scenario. The default [`SimStrategy::Auto`] keeps paper-scale
    /// worlds on the tick engine and switches large worlds to the
    /// event-driven engine (same size threshold as
    /// [`RoutingKind::Auto`]); the two are bit-identical, so like
    /// [`Scenario::routing`] this knob never changes a curve.
    pub fn strategy(mut self, strategy: SimStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the intra-world shard count for every run of the scenario.
    /// The default [`ShardSpec::Auto`] follows `DYNAQUAR_SHARDS`, then
    /// stays serial. Sharding splits each phase sweep of a single world
    /// across cores with a deterministic ascending-host-id merge, so
    /// like [`Scenario::routing`] and [`Scenario::strategy`] this knob
    /// is a pure performance choice: any shard count traces
    /// bit-identical curves.
    pub fn shards(mut self, shards: ShardSpec) -> Self {
        self.shards = shards;
        self
    }

    /// Checkpoints every run of the scenario every `every_ticks` ticks
    /// into `directory` (one snapshot file per run seed), and lets the
    /// supervisor resume a crashed run from its latest checkpoint
    /// instead of reseeding it. Checkpointing never changes a curve:
    /// the snapshot captures the engine mid-run without touching its
    /// RNG streams, so a resumed run is bit-identical to an
    /// uninterrupted one.
    ///
    /// # Panics
    ///
    /// Panics if `every_ticks == 0`.
    pub fn checkpoint_every(
        mut self,
        every_ticks: u64,
        directory: impl Into<std::path::PathBuf>,
    ) -> Self {
        assert!(every_ticks > 0, "need a positive checkpoint interval");
        self.checkpoint = Some(CheckpointPolicy {
            every_ticks,
            directory: directory.into(),
        });
        self
    }

    /// Sets the worker-thread count for the averaged runs. The default
    /// (unset) follows `DYNAQUAR_THREADS`, then the machine's available
    /// parallelism. Thread count never changes the result: the runner
    /// collects seeded runs in seed order, so the averaged curves are
    /// bit-identical for any value here.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn parallelism(mut self, threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker thread");
        self.parallelism = Some(threads);
        self
    }

    /// Runs the packet-level simulation, averaged over the configured
    /// number of runs.
    ///
    /// # Panics
    ///
    /// Panics on invalid configuration (degenerate β or horizon).
    pub fn run_simulated(&self) -> ScenarioOutcome {
        let world = self.topology.build_with(self.routing);
        self.run_simulated_on(&world)
    }

    /// Like [`Scenario::run_simulated`] but reuses a prebuilt world
    /// (avoids recomputing routing when comparing deployments on the
    /// same topology).
    ///
    /// # Panics
    ///
    /// Panics on invalid configuration.
    pub fn run_simulated_on(&self, world: &World) -> ScenarioOutcome {
        let config = self.sim_config_for(world);
        let seeds: Vec<u64> = (0..self.runs as u64).map(|k| self.seed + k).collect();
        let parallel = match self.parallelism {
            Some(threads) => ParallelConfig::new(threads),
            None => ParallelConfig::from_env(),
        };
        let avg = run_averaged_parallel(world, &config, self.behavior, &seeds, &parallel);
        ScenarioOutcome {
            label: self.deployment.label(),
            summary: CurveSummary::of(&avg.infected_fraction),
            infected: avg.infected_fraction,
            ever_infected: avg.ever_infected_fraction,
            immunized: avg.immunized_fraction,
            accounting: avg.accounting,
        }
    }

    /// Materializes the scenario's topology with its configured routing
    /// backend — the world [`Scenario::run_simulated`] would build.
    ///
    /// # Panics
    ///
    /// Panics on degenerate topology sizes.
    pub fn build_world(&self) -> World {
        self.topology.build_with(self.routing)
    }

    /// Builds the engine configuration this scenario runs on `world` —
    /// the exact [`SimConfig`] every averaged run uses, exposed so a
    /// serving layer can drive single [`dynaquar_netsim::Simulator`]
    /// runs (with observers, checkpoints, forks) under the same
    /// contract as [`Scenario::run_simulated_on`].
    ///
    /// # Panics
    ///
    /// Panics on invalid configuration (degenerate β or horizon).
    pub fn sim_config_for(&self, world: &World) -> SimConfig {
        let plan = build_plan(world, self.deployment, &self.params);
        let mut builder = SimConfig::builder();
        builder
            .beta(self.beta)
            .horizon(self.horizon)
            .initial_infected(self.initial_infected)
            .strategy(self.strategy)
            .shards(self.shards)
            .plan(plan);
        if let Some(imm) = self.immunization {
            builder.immunization(imm);
        }
        if let Some(q) = self.quarantine {
            builder.quarantine(q);
        }
        builder.faults(self.faults.clone());
        if let Some(cp) = &self.checkpoint {
            builder.checkpoint_every(cp.every_ticks, cp.directory.clone());
        }
        builder.build().expect("scenario parameters validated")
    }

    /// The worm behaviour every run of this scenario uses.
    pub fn worm_behavior(&self) -> WormBehavior {
        self.behavior
    }

    /// The base RNG seed (run `k` uses `seed + k`).
    pub fn base_seed(&self) -> u64 {
        self.seed
    }

    /// The number of averaged runs.
    pub fn run_count(&self) -> usize {
        self.runs
    }

    /// The simulation horizon in ticks.
    pub fn horizon_ticks(&self) -> u64 {
        self.horizon
    }

    /// The checkpoint policy, if any.
    pub fn checkpoint_policy(&self) -> Option<&CheckpointPolicy> {
        self.checkpoint.as_ref()
    }

    /// The homogeneous-model analytic baseline for this scenario's
    /// population and β (exact only for `Deployment::None`; deployments
    /// have their own models in [`dynaquar_epidemic`]).
    ///
    /// # Panics
    ///
    /// Panics if the topology yields fewer than two hosts.
    pub fn analytic_baseline(&self, dt: f64) -> TimeSeries {
        let world = self.topology.build();
        let n = world.hosts().len() as f64;
        Logistic::new(n, self.beta, self.initial_infected as f64)
            .expect("valid logistic parameters")
            .series(0.0, self.horizon as f64, dt)
    }
}

/// The outcome of one scenario run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioOutcome {
    /// Legend label (derived from the deployment).
    pub label: String,
    /// Mean infected fraction per tick.
    pub infected: TimeSeries,
    /// Mean ever-infected fraction per tick.
    pub ever_infected: TimeSeries,
    /// Mean immunized fraction per tick.
    pub immunized: TimeSeries,
    /// Summary statistics of the infected curve.
    pub summary: CurveSummary,
    /// The merged packet ledger of every averaged run: how many packets
    /// the ensemble emitted, delivered, filtered, lost, or found
    /// unroutable (summed over runs, per packet kind).
    pub accounting: PacketAccounting,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_scenario_saturates_without_rl() {
        let out = Scenario::new(TopologySpec::Star { leaves: 49 })
            .horizon(80)
            .runs(2)
            .run_simulated();
        assert!(out.infected.final_value() > 0.9);
        assert_eq!(out.label, "No RL");
    }

    #[test]
    fn hub_deployment_slows_star() {
        let spec = TopologySpec::Star { leaves: 99 };
        let world = spec.build();
        let base = Scenario::new(spec).horizon(100).runs(3);
        let none = base.clone().run_simulated_on(&world);
        let hub = base
            .clone()
            .deployment(Deployment::Hub)
            .run_simulated_on(&world);
        let t_none = none.infected.time_to_reach(0.5).unwrap();
        if let Some(t_hub) = hub.infected.time_to_reach(0.5) { assert!(t_hub > 1.5 * t_none) }
    }

    #[test]
    fn analytic_baseline_tracks_simulation_roughly() {
        let scenario = Scenario::new(TopologySpec::Star { leaves: 199 })
            .horizon(50)
            .runs(4);
        let sim = scenario.run_simulated();
        let model = scenario.analytic_baseline(1.0);
        // Both saturate; times to 50% within a factor of ~2.5 (the
        // simulated worm pays routing latency the model ignores).
        let ts = sim.infected.time_to_reach(0.5).unwrap();
        let tm = model.time_to_reach(0.5).unwrap();
        assert!(ts / tm < 4.0 && tm / ts < 4.0, "sim {ts} model {tm}");
    }

    #[test]
    fn subnet_scenario_with_local_preferential() {
        let out = Scenario::new(TopologySpec::Subnets {
            backbone: 2,
            subnets: 5,
            hosts_per_subnet: 10,
        })
        .behavior(WormBehavior::local_preferential(0.9))
        .horizon(150)
        .runs(2)
        .run_simulated();
        assert!(out.infected.final_value() > 0.8);
    }

    #[test]
    fn power_law_spec_builds() {
        let w = TopologySpec::PowerLaw {
            nodes: 200,
            edges_per_node: 2,
            seed: 5,
        }
        .build();
        assert_eq!(w.graph().node_count(), 200);
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn zero_runs_panics() {
        let _ = Scenario::new(TopologySpec::Star { leaves: 10 }).runs(0);
    }

    #[test]
    #[should_panic(expected = "at least one worker thread")]
    fn zero_parallelism_panics() {
        let _ = Scenario::new(TopologySpec::Star { leaves: 10 }).parallelism(0);
    }

    #[test]
    fn parallelism_knob_does_not_change_the_outcome() {
        let spec = TopologySpec::Star { leaves: 39 };
        let world = spec.build();
        let base = Scenario::new(spec).horizon(60).runs(4);
        let serial = base.clone().parallelism(1).run_simulated_on(&world);
        let pooled = base.clone().parallelism(4).run_simulated_on(&world);
        assert_eq!(serial, pooled);
    }

    #[test]
    fn routing_backend_does_not_change_the_outcome() {
        let base = Scenario::new(TopologySpec::PowerLaw {
            nodes: 150,
            edges_per_node: 2,
            seed: 11,
        })
        .horizon(60)
        .runs(2);
        let dense = base.clone().routing(RoutingKind::Dense).run_simulated();
        let lazy = base
            .clone()
            .routing(RoutingKind::Lazy {
                max_cached_destinations: 16,
            })
            .run_simulated();
        let hier = base.clone().routing(RoutingKind::Hier).run_simulated();
        let auto = base.run_simulated();
        assert_eq!(dense, lazy);
        assert_eq!(dense, hier);
        assert_eq!(dense, auto);
    }

    #[test]
    fn routing_backend_does_not_change_the_outcome_on_subnet_worlds() {
        // The hier backend's home turf: host stars and edge routers
        // peel, the backbone ring is the core. All three backends (and
        // Auto, which picks hier here once the world outgrows the dense
        // threshold) must trace the same curves.
        let base = Scenario::new(TopologySpec::Subnets {
            backbone: 3,
            subnets: 8,
            hosts_per_subnet: 12,
        })
        .horizon(60)
        .runs(2);
        let dense = base.clone().routing(RoutingKind::Dense).run_simulated();
        let lazy = base
            .clone()
            .routing(RoutingKind::Lazy {
                max_cached_destinations: 16,
            })
            .run_simulated();
        let hier = base.clone().routing(RoutingKind::Hier).run_simulated();
        assert_eq!(dense, lazy);
        assert_eq!(dense, hier);
    }

    #[test]
    fn stepping_strategy_does_not_change_the_outcome() {
        // The engine-strategy analogue of the routing test above: tick
        // and event stepping are bit-identical on a scenario exercising
        // throttling filters and fault injection.
        let base = Scenario::new(TopologySpec::PowerLaw {
            nodes: 150,
            edges_per_node: 2,
            seed: 11,
        })
        .horizon(60)
        .deployment(Deployment::Hosts { fraction: 1.0 })
        .faults(FaultPlan::none().with_link_loss(0.2, 0.1))
        .runs(2);
        let tick = base.clone().strategy(SimStrategy::Tick).run_simulated();
        let event = base.clone().strategy(SimStrategy::Event).run_simulated();
        assert_eq!(tick, event);
    }

    #[test]
    fn shard_count_does_not_change_the_outcome() {
        // The sharding analogue of the parallelism test above: the
        // world is tiny (far under the shard work thresholds) and a
        // sharded sweep must still be bit-identical, because the
        // thresholds only gate whether threads are spawned — never the
        // draw or merge order.
        let spec = TopologySpec::Subnets {
            backbone: 2,
            subnets: 6,
            hosts_per_subnet: 10,
        };
        let world = spec.build();
        let base = Scenario::new(spec)
            .horizon(60)
            .deployment(Deployment::Hosts { fraction: 1.0 })
            .runs(2);
        let serial = base.clone().shards(ShardSpec::Fixed(1)).run_simulated_on(&world);
        let sharded = base.clone().shards(ShardSpec::Fixed(4)).run_simulated_on(&world);
        assert_eq!(serial, sharded);
    }

    #[test]
    fn checkpointing_does_not_change_the_outcome() {
        let dir = std::env::temp_dir().join(format!("dqsnap-scenario-{}", std::process::id()));
        let spec = TopologySpec::Star { leaves: 39 };
        let world = spec.build();
        let base = Scenario::new(spec).horizon(60).runs(2);
        let plain = base.clone().run_simulated_on(&world);
        let checkpointed = base.checkpoint_every(10, &dir).run_simulated_on(&world);
        assert_eq!(plain, checkpointed);
        // The policy actually wrote snapshots (one per run seed).
        assert!(std::fs::read_dir(&dir).map(|d| d.count() >= 2).unwrap_or(false));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "positive checkpoint interval")]
    fn zero_checkpoint_interval_panics() {
        let _ = Scenario::new(TopologySpec::Star { leaves: 10 }).checkpoint_every(0, "x");
    }

    #[test]
    fn explicit_empty_fault_plan_changes_nothing() {
        let spec = TopologySpec::Star { leaves: 39 };
        let world = spec.build();
        let base = Scenario::new(spec).horizon(60).runs(2);
        let plain = base.clone().run_simulated_on(&world);
        let with_none = base.faults(FaultPlan::none()).run_simulated_on(&world);
        assert_eq!(plain, with_none);
    }

    #[test]
    fn outcome_carries_a_conserved_packet_ledger() {
        let out = Scenario::new(TopologySpec::Star { leaves: 49 })
            .horizon(60)
            .runs(3)
            .run_simulated();
        assert!(out.accounting.is_conserved());
        assert!(out.accounting.worm.emitted > 0);
        assert!(out.accounting.worm.delivered > 0);
        assert_eq!(out.accounting.background.emitted, 0);
    }

    #[test]
    fn false_positive_faults_immunize_clean_hosts() {
        let spec = TopologySpec::Star { leaves: 49 };
        let world = spec.build();
        let out = Scenario::new(spec)
            .horizon(60)
            .runs(2)
            .faults(FaultPlan::none().with_false_positives(10, (0, 30)))
            .run_simulated_on(&world);
        // No quarantine or immunization is configured, so every
        // immunized host is a false-positive quarantine of a clean one.
        assert!(out.immunized.final_value() > 0.0);
    }
}
