//! The paper's contribution as a library: deployment-strategy analysis
//! for worm rate limiting.
//!
//! *Dynamic Quarantine of Internet Worms* (DSN 2004) asks **where** rate
//! control should be deployed — end hosts, edge routers, or backbone
//! routers — and answers with coupled analytical models and packet-level
//! simulations. This crate ties the reproduction's substrates together:
//!
//! * [`strategy`] — the [`strategy::Deployment`] enum and the
//!   translation from a strategy to a concrete
//!   [`RateLimitPlan`](dynaquar_netsim::plan::RateLimitPlan);
//! * [`scenario`] — a builder that runs one worm/topology/deployment
//!   combination through both the analytic and the simulated path;
//! * [`report`] — comparison tables (time-to-level, slowdown factors);
//! * [`experiments`] — the registry reproducing **every figure and
//!   in-prose table** of the paper (`fig1a` … `fig10`, `tab_limits`,
//!   `tab_worms`), each with machine-checked shape criteria;
//! * [`ablations`] — sweeps over the reproduction's own knobs
//!   (deployment fraction, backbone allowable rate, cap-weight
//!   normalization, legitimate-traffic collateral).
//!
//! # Example
//!
//! ```
//! use dynaquar_core::experiments::{self, Quality};
//!
//! // Reproduce Figure 2 (host-based rate limiting, analytic).
//! let out = experiments::run("fig2", Quality::Quick).expect("known id");
//! assert!(out.checks.iter().all(|c| c.passed), "{:?}", out.checks);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ablations;
pub mod experiments;
pub mod report;
pub mod scenario;
pub mod spec;
pub mod strategy;

pub use report::ComparisonReport;
pub use scenario::{Scenario, ScenarioOutcome, TopologySpec};
pub use strategy::{Deployment, RateLimitParams};
pub use dynaquar_topology::lazy::RoutingKind;
