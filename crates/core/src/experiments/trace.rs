//! Section 7: the trace study (Figures 9 and 10, the derived-limits
//! table, and the Welchia/Blaster footnote).

use super::{check, ExperimentOutput, Quality};
use dynaquar_epidemic::logistic::Logistic;
use dynaquar_epidemic::star::{HubRateLimit, LeafRateLimit};
use dynaquar_epidemic::SeriesSet;
use dynaquar_traces::analysis::{aggregate_contact_samples, Refinement};
use dynaquar_traces::cdf::Ecdf;
use dynaquar_traces::classify::worm_peak_comparison;
use dynaquar_traces::limits::LimitsReport;
use dynaquar_traces::record::{HostClass, Trace};
use dynaquar_traces::workload::TraceBuilder;

fn paper_trace(quality: Quality) -> Trace {
    match quality {
        Quality::Quick => TraceBuilder::new()
            .normal_clients(120)
            .servers(4)
            .p2p_clients(6)
            .infected(8)
            .duration_secs(600.0)
            .seed(42)
            .build(),
        Quality::Full => TraceBuilder::new()
            .normal_clients(999)
            .servers(17)
            .p2p_clients(33)
            .infected(79)
            .duration_secs(900.0)
            .seed(42)
            .build(),
    }
}

fn cdf_series(trace: &Trace, class_hosts: Vec<dynaquar_ratelimit::deploy::HostId>) -> SeriesSet {
    let mut set = SeriesSet::new("CDF of contact rates in a five second interval");
    for refinement in Refinement::all_three() {
        let samples =
            aggregate_contact_samples(trace, class_hosts.clone(), 5.0, refinement);
        set.push(refinement.label(), Ecdf::from_counts(samples).to_series());
    }
    set
}

/// Figure 9(a): CDF of aggregate 5-second contact rates for the normal
/// desktop clients, under the three refinements.
pub fn fig9a(quality: Quality) -> ExperimentOutput {
    let trace = paper_trace(quality);
    let hosts = trace.hosts_of_class(HostClass::NormalClient);
    let series = cdf_series(&trace, hosts.clone());

    let p999 = |refinement| {
        Ecdf::from_counts(aggregate_contact_samples(
            &trace,
            hosts.clone(),
            5.0,
            refinement,
        ))
        .percentile(0.999)
    };
    let (all, noprior, nodns) = (
        p999(Refinement::All),
        p999(Refinement::NoPriorContact),
        p999(Refinement::NoPriorNoDns),
    );

    let checks = vec![
        check(
            "refinements lower the 99.9th-percentile contact rate (paper: 16 / 14 / 9)",
            all >= noprior && noprior >= nodns && nodns < all,
            format!("p99.9 per 5s: all {all}, no-prior {noprior}, no-prior-no-dns {nodns}"),
        ),
        {
            // The paper's 16-per-5s tail is for 999 clients; scale the
            // expectation to this trace's population.
            let expected = 16.0 * hosts.len() as f64 / 999.0;
            check(
                "normal-client aggregate tail is in the paper's ballpark (16/5s at 999 clients)",
                all >= (0.25 * expected).max(1.0) && all <= 4.0 * expected + 5.0,
                format!("p99.9 all-contacts = {all}, population-scaled expectation = {expected:.1}"),
            )
        },
    ];

    ExperimentOutput {
        id: "fig9a",
        title: "Figure 9(a): contact-rate CDF, normal clients",
        series,
        notes: vec![format!(
            "hosts = {}, duration = {}s, p99.9 = {all}/{noprior}/{nodns}",
            hosts.len(),
            trace.duration()
        )],
        checks,
    }
}

/// Figure 9(b): the same CDFs for the worm-infected hosts.
pub fn fig9b(quality: Quality) -> ExperimentOutput {
    let trace = paper_trace(quality);
    let infected = trace.infected_hosts();
    let normal = trace.hosts_of_class(HostClass::NormalClient);
    let series = cdf_series(&trace, infected.clone());

    let median = |hosts: Vec<dynaquar_ratelimit::deploy::HostId>, refinement| {
        Ecdf::from_counts(aggregate_contact_samples(&trace, hosts, 5.0, refinement))
            .percentile(0.5)
    };
    let worm_all = median(infected.clone(), Refinement::All);
    let worm_nodns = median(infected.clone(), Refinement::NoPriorNoDns);
    let normal_p999 = Ecdf::from_counts(aggregate_contact_samples(
        &trace,
        normal,
        5.0,
        Refinement::All,
    ))
    .percentile(0.999);

    let checks = vec![
        check(
            "worm-infected hosts exhibit much higher contact rates than normal clients",
            worm_all > 3.0 * normal_p999,
            format!("worm median {worm_all} vs normal p99.9 {normal_p999}"),
        ),
        check(
            "the three refinement lines are tight for worm traffic (worms spike all metrics)",
            worm_nodns > 0.9 * worm_all,
            format!("worm median: all {worm_all}, no-prior-no-dns {worm_nodns}"),
        ),
    ];

    ExperimentOutput {
        id: "fig9b",
        title: "Figure 9(b): contact-rate CDF, worm-infected hosts",
        series,
        notes: vec![format!(
            "infected hosts = {}, worm median {worm_all} vs normal p99.9 {normal_p999}",
            infected.len()
        )],
        checks,
    }
}

/// Figure 10: analytic worm propagation at the trace-derived rates.
///
/// The paper approximates edge-router rate limiting with the hub model
/// (Equations 4/5) for a single 1,128-host subnet: the DNS-based scheme
/// allows a lower aggregate rate (γ:β = 1:2 at the lower DNS budget),
/// the IP-throttling scheme a higher one (1:6 at the larger all-contacts
/// budget); per-host limits let every host use its full slot.
pub fn fig10(_quality: Quality) -> ExperimentOutput {
    let n = 1128.0;
    let horizon = 10_000.0;
    let dt = 1.0;
    // Worm's unconstrained contact rate: 10 scans/s.
    let worm_rate = 10.0;
    // Trace-derived budgets (contacts/second): IP throttle 16 per 5 s,
    // DNS-based 9 per 5 s aggregate; per-host 4 per 5 s each.
    let ip_budget = 16.0 / 5.0;
    let dns_budget = 9.0 / 5.0;
    let per_host_rate = 4.0 / 5.0;

    let no_rl = Logistic::new(n, worm_rate, 1.0).expect("valid").series(0.0, horizon, dt);
    let host = LeafRateLimit::new(n, 1.0, worm_rate, per_host_rate, 1.0)
        .expect("valid")
        .series(horizon, dt);
    let dns = HubRateLimit::new(n, dns_budget / 2.0, dns_budget, 1.0)
        .expect("valid")
        .series(horizon, dt);
    let ip = HubRateLimit::new(n, ip_budget / 6.0, ip_budget, 1.0)
        .expect("valid")
        .series(horizon, dt);

    let t60 = |s: &dynaquar_epidemic::TimeSeries| s.time_to_reach(0.6).unwrap_or(f64::INFINITY);
    let (t_no, t_host, t_dns, t_ip) = (t60(&no_rl), t60(&host), t60(&dns), t60(&ip));

    let checks = vec![
        check(
            "aggregated rate limiting at the edge beats per-host limits",
            t_ip > 3.0 * t_host && t_dns > 3.0 * t_host,
            format!("t60: host {t_host:.0}, IP-throttle {t_ip:.0}, DNS {t_dns:.0}"),
        ),
        check(
            "the DNS-based scheme (lower aggregate budget) beats pure IP throttling",
            t_dns > t_ip,
            format!("t60: DNS {t_dns:.0} vs IP {t_ip:.0}"),
        ),
        check(
            "every rate-limited curve lags the unlimited worm",
            t_host > 2.0 * t_no,
            format!("t60: no RL {t_no:.0}, host {t_host:.0}"),
        ),
    ];

    let mut series = SeriesSet::new("Effect of rate limiting given the rates proposed by our trace study");
    series.push("No RL", no_rl);
    series.push("1:2 (rate) RL", dns);
    series.push("1:6 (rate) RL", ip);
    series.push("Host based RL", host);

    ExperimentOutput {
        id: "fig10",
        title: "Figure 10: analytic rate limiting at trace-derived rates",
        series,
        notes: vec![
            format!("N = {n}, worm rate {worm_rate}/s"),
            format!("budgets: IP {ip_budget:.2}/s, DNS {dns_budget:.2}/s, per-host {per_host_rate:.2}/s"),
            "time axis is plotted on a log scale in the paper".to_string(),
        ],
        checks,
    }
}

/// The Section 7 in-prose table of derived rate limits.
pub fn tab_limits(quality: Quality) -> ExperimentOutput {
    // Worm-free trace: the limits describe legitimate traffic. Longer
    // duration buys more 5-second windows for the 99.9th percentile.
    let trace = match quality {
        Quality::Quick => TraceBuilder::new()
            .normal_clients(200)
            .servers(6)
            .p2p_clients(10)
            .infected(0)
            .duration_secs(1800.0)
            .seed(42)
            .build(),
        Quality::Full => TraceBuilder::new()
            .normal_clients(999)
            .servers(17)
            .p2p_clients(33)
            .infected(0)
            .duration_secs(7200.0)
            .seed(42)
            .build(),
    };
    let report = LimitsReport::compute(&trace);

    let na = &report.normal_aggregate;
    let pa = &report.p2p_aggregate;
    let ph = &report.normal_per_host;
    let ws = &report.window_scaling;

    let checks = vec![
        check(
            "normal aggregate ladder is monotone (paper: 16 / 14 / 9)",
            na[0].limit >= na[1].limit && na[1].limit >= na[2].limit && na[2].limit < na[0].limit,
            format!("measured {} / {} / {}", na[0].limit, na[1].limit, na[2].limit),
        ),
        check(
            "p2p clients need far higher limits than normal clients per capita (paper: 89 / 61 / 26)",
            pa[0].limit * 3 >= na[0].limit,
            format!("p2p {} / {} / {}", pa[0].limit, pa[1].limit, pa[2].limit),
        ),
        check(
            "per-host limits are tiny (paper: 4 all, 1 non-DNS)",
            ph[0].limit <= 10 && ph[1].limit <= ph[0].limit,
            format!("per-host {} (all), {} (non-DNS)", ph[0].limit, ph[1].limit),
        ),
        check(
            "longer windows accommodate lower per-second rates (paper: 5/1s, 12/5s, 50/60s)",
            {
                let rate = |d: &dynaquar_traces::limits::DerivedLimit| d.limit as f64 / d.window;
                rate(&ws[0]) >= rate(&ws[1]) && rate(&ws[1]) >= rate(&ws[2])
            },
            format!(
                "window limits: {}/1s, {}/5s, {}/60s",
                ws[0].limit, ws[1].limit, ws[2].limit
            ),
        ),
    ];

    ExperimentOutput {
        id: "tab_limits",
        title: "Section 7 table: derived practical rate limits",
        series: SeriesSet::new("derived rate limits (no curves; see notes)"),
        notes: vec![report.to_string()],
        checks,
    }
}

/// The Section 7 footnote: Welchia's peak scan rate is an order of
/// magnitude above Blaster's (7,068 vs 671 hosts per minute).
pub fn tab_worms(quality: Quality) -> ExperimentOutput {
    let trace = paper_trace(quality);
    let (welchia, blaster) = worm_peak_comparison(&trace);

    let checks = vec![
        check(
            "Welchia's peak scan rate is ~an order of magnitude above Blaster's",
            welchia as f64 > 4.0 * blaster as f64,
            format!("peaks per minute: Welchia {welchia}, Blaster {blaster}"),
        ),
        check(
            "Welchia's peak is in the ballpark of the observed 7068 hosts/minute",
            (1500..=14000).contains(&welchia),
            format!("Welchia peak = {welchia}"),
        ),
        check(
            "Blaster's peak is in the ballpark of the observed 671 hosts/minute",
            (150..=1400).contains(&blaster),
            format!("Blaster peak = {blaster}"),
        ),
    ];

    ExperimentOutput {
        id: "tab_worms",
        title: "Section 7 footnote: Welchia vs Blaster peak scan rates",
        series: SeriesSet::new("worm peak scan rates (no curves; see notes)"),
        notes: vec![format!(
            "peak distinct destinations per 60 s: Welchia {welchia} (paper 7068), Blaster {blaster} (paper 671)"
        )],
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9a_quick_checks_pass() {
        let out = fig9a(Quality::Quick);
        assert_eq!(out.series.len(), 3);
        assert!(out.all_checks_passed(), "{:#?}", out.checks);
    }

    #[test]
    fn fig9b_quick_checks_pass() {
        let out = fig9b(Quality::Quick);
        assert!(out.all_checks_passed(), "{:#?}", out.checks);
    }

    #[test]
    fn fig10_checks_pass() {
        let out = fig10(Quality::Quick);
        assert_eq!(out.series.len(), 4);
        assert!(out.all_checks_passed(), "{:#?}", out.checks);
    }

    #[test]
    fn tab_limits_quick_checks_pass() {
        let out = tab_limits(Quality::Quick);
        assert!(out.all_checks_passed(), "{:#?}", out.checks);
    }

    #[test]
    fn tab_worms_quick_checks_pass() {
        let out = tab_worms(Quality::Quick);
        assert!(out.all_checks_passed(), "{:#?}", out.checks);
    }
}
