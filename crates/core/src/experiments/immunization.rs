//! Figures 7 and 8: delayed immunization with and without rate limiting
//! (Section 6).

use super::{check, ExperimentOutput, Quality};
use crate::scenario::{Scenario, TopologySpec};
use crate::strategy::{Deployment, RateLimitParams};
use dynaquar_epidemic::immunization::DelayedImmunization;
use dynaquar_epidemic::SeriesSet;
use dynaquar_netsim::config::{ImmunizationConfig, ImmunizationTrigger};

const BETA: f64 = 0.8;
const MU: f64 = 0.1;

/// Figure 7(a): analytic delayed immunization — immunization starting
/// when 20 / 50 / 80 % of hosts are infected.
pub fn fig7a(_quality: Quality) -> ExperimentOutput {
    let model = DelayedImmunization::new(1000.0, BETA, MU, 1.0).expect("paper parameters");
    let horizon = 80.0;
    let dt = 0.05;

    let mut series = SeriesSet::new("Analytical Model for delayed immunization");
    let no_imm = DelayedImmunization::new(1000.0, BETA, 0.0, 1.0)
        .expect("valid")
        .series(f64::MAX / 4.0, horizon, dt);
    series.push("No immunization", no_imm.clone());

    let mut finals = Vec::new();
    for &frac in &[0.2, 0.5, 0.8] {
        let d = model.delay_for_fraction(frac).expect("reachable");
        let s = model.series(d, horizon, dt);
        finals.push(model.ever_infected_series(d, 200.0, dt).final_value());
        series.push(format!("Immunization at {:.0}%", frac * 100.0), s);
    }

    let checks = vec![
        check(
            "earlier immunization is more effective (ever-infected ordered)",
            finals[0] < finals[1] && finals[1] < finals[2],
            format!("ever-infected: 20% -> {:.2}, 50% -> {:.2}, 80% -> {:.2}", finals[0], finals[1], finals[2]),
        ),
        check(
            "infected fraction declines toward zero after immunization",
            series
                .get("Immunization at 20%")
                .map(|s| s.final_value() < 0.2)
                .unwrap_or(false),
            "final infected fraction with earliest immunization".to_string(),
        ),
    ];

    ExperimentOutput {
        id: "fig7a",
        title: "Figure 7(a): analytic delayed immunization",
        series,
        notes: vec![
            format!("N0 = 1000, beta = {BETA}, mu = {MU}"),
            format!("total ever infected: {finals:?}"),
        ],
        checks,
    }
}

/// Figure 7(b): analytic delayed immunization with backbone rate
/// limiting, immunization starting at ticks 6 / 8 / 10 (the times the
/// unlimited model reaches 20 / 50 / 80 % infection).
pub fn fig7b(_quality: Quality) -> ExperimentOutput {
    let alpha = 0.5;
    let model = DelayedImmunization::new(1000.0, BETA, MU, 1.0)
        .expect("valid")
        .with_backbone(alpha, 0.0)
        .expect("valid");
    let horizon = 50.0;
    let dt = 0.05;

    let mut series =
        SeriesSet::new("Analytical Model for delayed immunization with rate limiting");
    let no_imm = DelayedImmunization::new(1000.0, BETA, 0.0, 1.0)
        .expect("valid")
        .with_backbone(alpha, 0.0)
        .expect("valid")
        .series(f64::MAX / 4.0, horizon, dt);
    series.push("No immunization", no_imm);

    let mut finals = Vec::new();
    for &tick in &[6.0, 8.0, 10.0] {
        let s = model.series(tick, horizon, dt);
        finals.push(model.ever_infected_series(tick, 400.0, dt).final_value());
        series.push(format!("Immunization at {tick:.0}th timetick"), s);
    }

    // Figure 8's companion claim: RL + immunization beats immunization
    // alone at the same trigger level. Compare ever-infected with RL
    // (trigger: tick 6) vs without RL (trigger: 20% infection).
    let plain = DelayedImmunization::new(1000.0, BETA, MU, 1.0).expect("valid");
    let d20 = plain.delay_for_fraction(0.2).expect("reachable");
    let ever_plain = plain.ever_infected_series(d20, 400.0, dt).final_value();
    let d20_rl = model.delay_for_fraction(0.2).expect("reachable");
    let ever_rl = model.ever_infected_series(d20_rl, 400.0, dt).final_value();

    let checks = vec![
        check(
            "earlier immunization remains more effective under rate limiting",
            finals[0] < finals[1] && finals[1] < finals[2],
            format!("ever-infected: {finals:?}"),
        ),
        check(
            "rate limiting lowers total ever-infected at the same trigger level",
            ever_rl < ever_plain,
            format!("ever-infected at 20% trigger: plain {ever_plain:.3}, with RL {ever_rl:.3}"),
        ),
    ];

    ExperimentOutput {
        id: "fig7b",
        title: "Figure 7(b): analytic delayed immunization with rate limiting",
        series,
        notes: vec![
            format!("alpha = {alpha} (gamma = beta(1-alpha) = {:.2})", BETA * (1.0 - alpha)),
            format!("ever-infected plain {ever_plain:.3} vs RL {ever_rl:.3}"),
        ],
        checks,
    }
}

fn sim_spec(quality: Quality) -> (TopologySpec, usize, u64) {
    match quality {
        Quality::Quick => (
            TopologySpec::PowerLaw {
                nodes: 300,
                edges_per_node: 2,
                seed: 9,
            },
            3,
            80,
        ),
        Quality::Full => (
            TopologySpec::PowerLaw {
                nodes: 1000,
                edges_per_node: 2,
                seed: 9,
            },
            10,
            120,
        ),
    }
}

/// Figure 8(a): simulated delayed immunization on the power-law graph —
/// total ever-infected population, immunization at 20 / 50 / 80 %.
pub fn fig8a(quality: Quality) -> ExperimentOutput {
    let (spec, runs, horizon) = sim_spec(quality);
    let world = spec.build();
    let base = Scenario::new(spec)
        .beta(BETA)
        .horizon(horizon)
        .initial_infected(3)
        .runs(runs);

    let mut series = SeriesSet::new("Simulation for delayed immunization");
    let no_imm = base.clone().run_simulated_on(&world);
    series.push("No Immunization", no_imm.ever_infected.clone());

    let mut finals = Vec::new();
    for &frac in &[0.2, 0.5, 0.8] {
        let out = base
            .clone()
            .immunization(ImmunizationConfig {
                trigger: ImmunizationTrigger::AtInfectedFraction(frac),
                mu: MU,
            })
            .run_simulated_on(&world);
        finals.push(out.ever_infected.final_value());
        series.push(
            format!("Immunization at {:.0}%", frac * 100.0),
            out.ever_infected,
        );
    }

    let checks = vec![
        check(
            "earlier immunization caps total infections lower",
            finals[0] < finals[1] && finals[1] <= finals[2],
            format!("ever-infected finals: {finals:?}"),
        ),
        check(
            "immunizing at 20% infection keeps total damage well below saturation (paper: ~80%)",
            finals[0] > 0.4 && finals[0] < 0.97,
            format!("ever-infected at 20% trigger = {:.3}", finals[0]),
        ),
        check(
            "immunizing at 80% infection saves almost nothing (paper: ~98%)",
            finals[2] > 0.85,
            format!("ever-infected at 80% trigger = {:.3}", finals[2]),
        ),
    ];

    ExperimentOutput {
        id: "fig8a",
        title: "Figure 8(a): simulated delayed immunization",
        series,
        notes: vec![
            format!("{spec:?}, runs = {runs}, horizon = {horizon}, mu = {MU}"),
            format!("ever-infected finals: {finals:?}"),
        ],
        checks,
    }
}

/// Figure 8(b): simulated delayed immunization with backbone rate
/// limiting, immunization starting at ticks 6 / 8 / 10.
pub fn fig8b(quality: Quality) -> ExperimentOutput {
    let (spec, runs, horizon) = sim_spec(quality);
    let world = spec.build();
    // Milder caps than Figure 4's: the paper's Figure 8(b) worm still
    // reaches ~72% ever-infected despite rate limiting, so the filter
    // here slows rather than quashes the outbreak.
    let params = RateLimitParams {
        link_base_cap: 2.0,
        backbone_node_cap: Some(2.0),
        ..RateLimitParams::default()
    };
    let base = Scenario::new(spec)
        .beta(BETA)
        .horizon(horizon)
        .initial_infected(3)
        .runs(runs)
        .params(params)
        .deployment(Deployment::Backbone);

    let mut series = SeriesSet::new("Simulation for delayed immunization with rate limiting");
    let no_imm = base.clone().run_simulated_on(&world);
    series.push("No Immunization", no_imm.ever_infected.clone());

    let mut finals = Vec::new();
    for &tick in &[6u64, 8, 10] {
        let out = base
            .clone()
            .immunization(ImmunizationConfig {
                trigger: ImmunizationTrigger::AtTick(tick),
                mu: MU,
            })
            .run_simulated_on(&world);
        finals.push(out.ever_infected.final_value());
        series.push(format!("Immunization at {tick}th timetick"), out.ever_infected);
    }

    // Companion run without RL, immunization at 20% infection, to check
    // the paper's "80% -> 72%" improvement claim directionally.
    let plain = Scenario::new(spec)
        .beta(BETA)
        .horizon(horizon)
        .initial_infected(3)
        .runs(runs)
        .immunization(ImmunizationConfig {
            trigger: ImmunizationTrigger::AtInfectedFraction(0.2),
            mu: MU,
        })
        .run_simulated_on(&world);
    let ever_plain = plain.ever_infected.final_value();

    let checks = vec![
        check(
            "earlier immunization caps total infections lower (within run-to-run noise)",
            finals[0] <= finals[1] + 0.05 && finals[1] <= finals[2] + 0.05,
            format!("ever-infected finals: {finals:?}"),
        ),
        check(
            "rate limiting + earliest immunization beats immunization alone (paper: 80% -> 72%)",
            finals[0] < ever_plain,
            format!("with RL {:.3} vs without RL {ever_plain:.3}", finals[0]),
        ),
    ];

    ExperimentOutput {
        id: "fig8b",
        title: "Figure 8(b): simulated delayed immunization with rate limiting",
        series,
        notes: vec![
            format!("{spec:?}, runs = {runs}, horizon = {horizon}, mu = {MU}"),
            format!(
                "ever-infected: RL+tick6 {:.3}, plain at 20% {ever_plain:.3}",
                finals[0]
            ),
        ],
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7a_checks_pass() {
        let out = fig7a(Quality::Quick);
        assert_eq!(out.series.len(), 4);
        assert!(out.all_checks_passed(), "{:#?}", out.checks);
    }

    #[test]
    fn fig7b_checks_pass() {
        let out = fig7b(Quality::Quick);
        assert_eq!(out.series.len(), 4);
        assert!(out.all_checks_passed(), "{:#?}", out.checks);
    }

    #[test]
    fn fig8a_quick_checks_pass() {
        let out = fig8a(Quality::Quick);
        assert_eq!(out.series.len(), 4);
        assert!(out.all_checks_passed(), "{:#?}", out.checks);
    }

    #[test]
    fn fig8b_quick_checks_pass() {
        let out = fig8b(Quality::Quick);
        assert_eq!(out.series.len(), 4);
        assert!(out.all_checks_passed(), "{:#?}", out.checks);
    }
}
