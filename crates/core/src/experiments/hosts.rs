//! Figure 2: host-based rate limiting (Section 5.1).

use super::{check, ExperimentOutput, Quality};
use dynaquar_epidemic::host::HostRateLimit;

/// Figure 2: analytic host-based rate limiting at deployment fractions
/// 0 / 5 / 50 / 80 / 100 %, with β₁ = 0.8 and β₂ = 0.01.
pub fn fig2(_quality: Quality) -> ExperimentOutput {
    let model = HostRateLimit::new(1000.0, 0.8, 0.01, 1.0).expect("paper parameters are valid");
    let deployments = [0.0, 0.05, 0.50, 0.80, 1.0];
    let series = model
        .figure(&deployments, 1000.0, 1.0)
        .expect("valid deployment fractions");

    let t50 = |q: f64| {
        model
            .with_deployment(q)
            .expect("valid fraction")
            .time_to_fraction(0.5)
            .expect("reachable")
    };
    let (t0, t5, t50_, t80, t100) = (t50(0.0), t50(0.05), t50(0.5), t50(0.8), t50(1.0));

    let checks = vec![
        check(
            "5% deployment is nearly indistinguishable from none",
            t5 / t0 < 1.1,
            format!("t50: 0% {t0:.1}, 5% {t5:.1}"),
        ),
        check(
            "slowdown is linear in the unfiltered fraction (50% -> ~2x, 80% -> ~5x)",
            (t50_ / t0 - 2.0).abs() < 0.3 && (t80 / t0 - 5.0).abs() < 1.2,
            format!(
                "slowdowns: 50% = {:.2}x, 80% = {:.2}x",
                t50_ / t0,
                t80 / t0
            ),
        ),
        check(
            "80% -> 100% gap is enormous (little benefit unless universal)",
            t100 / t80 > 10.0,
            format!("t50: 80% {t80:.1}, 100% {t100:.1}"),
        ),
    ];

    ExperimentOutput {
        id: "fig2",
        title: "Figure 2: analytic host-based rate limiting",
        series,
        notes: vec![
            "N = 1000, beta1 = 0.8, beta2 = 0.01".to_string(),
            format!("t50 by deployment: 0%={t0:.1} 5%={t5:.1} 50%={t50_:.1} 80%={t80:.1} 100%={t100:.1}"),
        ],
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_checks_pass() {
        let out = fig2(Quality::Quick);
        assert_eq!(out.series.len(), 5);
        assert!(out.all_checks_passed(), "{:#?}", out.checks);
    }
}
