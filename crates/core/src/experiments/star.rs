//! Figure 1: rate-limiting deployment on a 200-node star (Section 4).

use super::{check, ExperimentOutput, Quality};
use crate::scenario::{Scenario, TopologySpec};
use crate::strategy::{Deployment, RateLimitParams};
use dynaquar_epidemic::logistic::Logistic;
use dynaquar_epidemic::star::{HubRateLimit, LeafRateLimit};
use dynaquar_epidemic::SeriesSet;

/// Paper parameters: 200 nodes, β₁ = 0.8, β₂ = 0.01, one seed infection.
const N: f64 = 200.0;
const BETA1: f64 = 0.8;
const BETA2: f64 = 0.01;

/// Figure 1(a): the analytic curves.
pub fn fig1a(_quality: Quality) -> ExperimentOutput {
    let horizon = 50.0;
    let dt = 0.1;
    let mut series = SeriesSet::new("Analytical Model for rate limiting (RL) on a Star Graph");

    let no_rl = Logistic::new(N, BETA1, 1.0).expect("valid").series(0.0, horizon, dt);
    let leaf10 = LeafRateLimit::new(N, 0.10, BETA1, BETA2, 1.0)
        .expect("valid")
        .series(horizon, dt);
    let leaf30 = LeafRateLimit::new(N, 0.30, BETA1, BETA2, 1.0)
        .expect("valid")
        .series(horizon, dt);
    // Hub deployment (Equations 4/5): generous per-link rate (links do
    // not bind early), hub aggregate cap β_hub = β₂ · N contacts/tick —
    // the hub forwards at the filtered rate on behalf of all leaves.
    let hub_model = HubRateLimit::new(N, BETA1, BETA2 * N * 2.0, 1.0).expect("valid");
    let hub = hub_model.series(horizon, dt);

    // Shape criteria from the paper's Figure 1 discussion.
    let t60_leaf30 = leaf30.time_to_reach(0.6);
    let t60_hub_extended = hub_model.series(400.0, dt).time_to_reach(0.6);
    let hub_vs_leaf = match (t60_leaf30, t60_hub_extended) {
        (Some(l), Some(h)) => h / l,
        _ => f64::INFINITY,
    };
    let t60_no_rl = no_rl.time_to_reach(0.6).unwrap_or(f64::INFINITY);
    let t60_leaf10 = leaf10.time_to_reach(0.6).unwrap_or(f64::INFINITY);

    let checks = vec![
        check(
            "10% leaf RL has negligible impact",
            t60_leaf10 < 1.25 * t60_no_rl,
            format!("t60: no RL {t60_no_rl:.1}, 10% leaf {t60_leaf10:.1}"),
        ),
        check(
            "reaching 60% infection with 30% leaf RL is ~3x quicker than hub RL",
            hub_vs_leaf > 2.0,
            format!("hub/leaf30 time ratio at 60% = {hub_vs_leaf:.2}"),
        ),
        check(
            "curves are ordered no-RL < 10% < 30% < hub at t = 15",
            {
                let at = |s: &dynaquar_epidemic::TimeSeries| s.value_at(15.0).unwrap_or(0.0);
                at(&no_rl) >= at(&leaf10)
                    && at(&leaf10) >= at(&leaf30)
                    && at(&leaf30) > at(&hub)
            },
            "pointwise ordering at t=15".to_string(),
        ),
    ];

    series.push("No RL", no_rl);
    series.push("10% Leaf Nodes RL", leaf10);
    series.push("30% Leaf Nodes RL", leaf30);
    series.push("Hub Node RL", hub);

    ExperimentOutput {
        id: "fig1a",
        title: "Figure 1(a): analytic rate limiting on a 200-node star",
        series,
        notes: vec![
            format!("N = {N}, beta1 = {BETA1}, beta2 = {BETA2}"),
            format!(
                "hub model: per-link gamma = {BETA1}, hub cap = {:.1} contacts/tick",
                BETA2 * N * 2.0
            ),
        ],
        checks,
    }
}

/// Figure 1(b): the simulated curves ("links limited to 10 packets per
/// second with the hub rate limit β = 0.01", averaged over ten runs).
pub fn fig1b(quality: Quality) -> ExperimentOutput {
    let (runs, horizon) = match quality {
        Quality::Quick => (2, 60),
        Quality::Full => (10, 100),
    };
    let spec = TopologySpec::Star { leaves: 199 };
    let world = spec.build();
    let params = RateLimitParams {
        link_base_cap: 10.0,
        // β = 0.01 aggregate per leaf ≈ 2 forwarded packets/tick at the
        // hub for N = 200.
        hub_forward_cap: BETA2 * N,
        // Leaf filter approximating β₂ = 0.01 contacts/tick.
        host_window_ticks: 100,
        host_max_new_targets: 1,
        ..RateLimitParams::default()
    };
    let base = Scenario::new(spec)
        .beta(BETA1)
        .horizon(horizon)
        .runs(runs)
        .params(params);

    let no_rl = base.clone().run_simulated_on(&world);
    let leaf10 = base
        .clone()
        .deployment(Deployment::Hosts { fraction: 0.10 })
        .run_simulated_on(&world);
    let leaf30 = base
        .clone()
        .deployment(Deployment::Hosts { fraction: 0.30 })
        .run_simulated_on(&world);
    let hub = base
        .clone()
        .deployment(Deployment::Hub)
        .run_simulated_on(&world);

    let t60 = |s: &dynaquar_epidemic::TimeSeries| s.time_to_reach(0.6);
    let t60_no = t60(&no_rl.infected).unwrap_or(f64::INFINITY);
    let t60_l10 = t60(&leaf10.infected).unwrap_or(f64::INFINITY);
    let t60_l30 = t60(&leaf30.infected).unwrap_or(f64::INFINITY);
    let t60_hub = t60(&hub.infected).unwrap_or(f64::INFINITY);

    let checks = vec![
        check(
            "10% leaf RL has negligible impact",
            t60_l10 < 1.5 * t60_no,
            format!("t60: no RL {t60_no:.1}, 10% leaf {t60_l10:.1}"),
        ),
        check(
            "30% leaf RL yields only a slight slowdown",
            t60_l30 < 2.5 * t60_no,
            format!("t60: no RL {t60_no:.1}, 30% leaf {t60_l30:.1}"),
        ),
        check(
            "hub RL is significantly more effective (>=2x slower than 30% leaf to 60%)",
            t60_hub > 2.0 * t60_l30,
            format!("t60: 30% leaf {t60_l30:.1}, hub {t60_hub:.1}"),
        ),
    ];

    let mut series = SeriesSet::new("Rate Limiting (RL) on a 200 node Star Graph (simulation)");
    series.push("No RL", no_rl.infected);
    series.push("10% Leaf Nodes RL", leaf10.infected);
    series.push("30% Leaf Nodes RL", leaf30.infected);
    series.push("Hub Node RL", hub.infected);

    ExperimentOutput {
        id: "fig1b",
        title: "Figure 1(b): simulated rate limiting on a 200-node star",
        series,
        notes: vec![
            format!("runs = {runs}, horizon = {horizon} ticks, beta = {BETA1}"),
            format!("hub: link caps 10/tick, forward cap {} pkts/tick", (BETA2 * N).round()),
        ],
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1a_checks_pass() {
        let out = fig1a(Quality::Quick);
        assert_eq!(out.series.len(), 4);
        assert!(out.all_checks_passed(), "{:#?}", out.checks);
    }

    #[test]
    fn fig1b_quick_checks_pass() {
        let out = fig1b(Quality::Quick);
        assert_eq!(out.series.len(), 4);
        assert!(out.all_checks_passed(), "{:#?}", out.checks);
    }
}
