//! The experiment registry: one entry per figure / in-prose table of the
//! paper, each regenerating its data series and checking the paper's
//! qualitative claims ("shape criteria") mechanically.
//!
//! | id | paper artifact |
//! |---|---|
//! | `fig1a` | Fig. 1(a) — analytic rate limiting on a 200-node star |
//! | `fig1b` | Fig. 1(b) — simulated rate limiting on a 200-node star |
//! | `fig2` | Fig. 2 — analytic host-based rate limiting |
//! | `fig3a` | Fig. 3(a) — analytic edge-router RL across subnets |
//! | `fig3b` | Fig. 3(b) — analytic edge-router RL within subnets |
//! | `fig4` | Fig. 4 — simulated RL on a 1,000-node power-law graph |
//! | `fig5` | Fig. 5 — simulated edge RL, random vs local-preferential |
//! | `fig6` | Fig. 6 — simulated local-pref worm, host vs backbone RL |
//! | `fig7a` | Fig. 7(a) — analytic delayed immunization |
//! | `fig7b` | Fig. 7(b) — analytic delayed immunization + backbone RL |
//! | `fig8a` | Fig. 8(a) — simulated delayed immunization |
//! | `fig8b` | Fig. 8(b) — simulated delayed immunization + backbone RL |
//! | `fig9a` | Fig. 9(a) — trace CDF, normal clients |
//! | `fig9b` | Fig. 9(b) — trace CDF, worm-infected hosts |
//! | `fig10` | Fig. 10 — analytic RL at trace-derived rates |
//! | `tab_limits` | Sec. 7 — derived practical rate limits |
//! | `tab_worms` | Sec. 7 footnote — Welchia vs Blaster peak scan rates |

mod edge;
mod hosts;
mod immunization;
mod powerlaw;
mod star;
mod trace;

use dynaquar_epidemic::SeriesSet;
use serde::{Deserialize, Serialize};

/// How expensive a reproduction run should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Quality {
    /// Scaled-down topologies / fewer averaged runs — for tests and CI.
    Quick,
    /// Paper-scale parameters — for regenerating the figures.
    Full,
}

/// One machine-checked qualitative claim from the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShapeCheck {
    /// The claim being checked.
    pub description: String,
    /// Whether the reproduction satisfies it.
    pub passed: bool,
    /// Measured values backing the verdict.
    pub details: String,
}

/// Creates a [`ShapeCheck`].
pub fn check(description: impl Into<String>, passed: bool, details: impl Into<String>) -> ShapeCheck {
    ShapeCheck {
        description: description.into(),
        passed,
        details: details.into(),
    }
}

/// The regenerated data and verdicts of one experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentOutput {
    /// Experiment id (e.g. `"fig4"`).
    pub id: &'static str,
    /// Paper artifact title.
    pub title: &'static str,
    /// The regenerated curves.
    pub series: SeriesSet,
    /// Free-form measured observations (parameters, derived numbers).
    pub notes: Vec<String>,
    /// Machine-checked shape criteria.
    pub checks: Vec<ShapeCheck>,
}

impl ExperimentOutput {
    /// Whether every shape check passed.
    pub fn all_checks_passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }
}

/// A registered experiment.
#[derive(Clone)]
pub struct Experiment {
    /// Stable id used on the command line and in benches.
    pub id: &'static str,
    /// Paper artifact title.
    pub title: &'static str,
    runner: fn(Quality) -> ExperimentOutput,
}

impl std::fmt::Debug for Experiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Experiment").field("id", &self.id).finish()
    }
}

impl Experiment {
    /// Runs the experiment at the given quality.
    pub fn run(&self, quality: Quality) -> ExperimentOutput {
        (self.runner)(quality)
    }
}

/// Every experiment, in paper order.
pub fn all() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "fig1a",
            title: "Figure 1(a): analytic rate limiting on a 200-node star",
            runner: star::fig1a,
        },
        Experiment {
            id: "fig1b",
            title: "Figure 1(b): simulated rate limiting on a 200-node star",
            runner: star::fig1b,
        },
        Experiment {
            id: "fig2",
            title: "Figure 2: analytic host-based rate limiting",
            runner: hosts::fig2,
        },
        Experiment {
            id: "fig3a",
            title: "Figure 3(a): analytic edge-router RL across subnets",
            runner: edge::fig3a,
        },
        Experiment {
            id: "fig3b",
            title: "Figure 3(b): analytic edge-router RL within subnets",
            runner: edge::fig3b,
        },
        Experiment {
            id: "fig4",
            title: "Figure 4: simulated RL on a 1000-node power-law topology",
            runner: powerlaw::fig4,
        },
        Experiment {
            id: "fig5",
            title: "Figure 5: simulated edge-router RL for random and local-preferential worms",
            runner: edge::fig5,
        },
        Experiment {
            id: "fig6",
            title: "Figure 6: simulated local-preferential worm, host vs backbone RL",
            runner: powerlaw::fig6,
        },
        Experiment {
            id: "fig7a",
            title: "Figure 7(a): analytic delayed immunization",
            runner: immunization::fig7a,
        },
        Experiment {
            id: "fig7b",
            title: "Figure 7(b): analytic delayed immunization with rate limiting",
            runner: immunization::fig7b,
        },
        Experiment {
            id: "fig8a",
            title: "Figure 8(a): simulated delayed immunization",
            runner: immunization::fig8a,
        },
        Experiment {
            id: "fig8b",
            title: "Figure 8(b): simulated delayed immunization with rate limiting",
            runner: immunization::fig8b,
        },
        Experiment {
            id: "fig9a",
            title: "Figure 9(a): contact-rate CDF, normal clients",
            runner: trace::fig9a,
        },
        Experiment {
            id: "fig9b",
            title: "Figure 9(b): contact-rate CDF, worm-infected hosts",
            runner: trace::fig9b,
        },
        Experiment {
            id: "fig10",
            title: "Figure 10: analytic rate limiting at trace-derived rates",
            runner: trace::fig10,
        },
        Experiment {
            id: "tab_limits",
            title: "Section 7 table: derived practical rate limits",
            runner: trace::tab_limits,
        },
        Experiment {
            id: "tab_worms",
            title: "Section 7 footnote: Welchia vs Blaster peak scan rates",
            runner: trace::tab_worms,
        },
    ]
}

/// Runs one experiment by id.
pub fn run(id: &str, quality: Quality) -> Option<ExperimentOutput> {
    all().into_iter().find(|e| e.id == id).map(|e| e.run(quality))
}

/// Runs every experiment in paper order.
pub fn run_all(quality: Quality) -> Vec<ExperimentOutput> {
    all().into_iter().map(|e| e.run(quality)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_all_seventeen() {
        let ids: Vec<&str> = all().iter().map(|e| e.id).collect();
        assert_eq!(ids.len(), 17);
        for expected in [
            "fig1a", "fig1b", "fig2", "fig3a", "fig3b", "fig4", "fig5", "fig6", "fig7a",
            "fig7b", "fig8a", "fig8b", "fig9a", "fig9b", "fig10", "tab_limits", "tab_worms",
        ] {
            assert!(ids.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn ids_are_unique() {
        let mut ids: Vec<&str> = all().iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 17);
    }

    #[test]
    fn unknown_id_returns_none() {
        assert!(run("fig99", Quality::Quick).is_none());
    }

    #[test]
    fn run_all_covers_the_registry() {
        // Only the cheap analytic experiments are exercised here (the
        // full set is covered by tests/experiments_registry.rs); this
        // checks ordering and id stability of the convenience wrapper.
        let ids: Vec<&str> = all().iter().map(|e| e.id).collect();
        assert_eq!(ids[0], "fig1a");
        assert_eq!(ids[ids.len() - 1], "tab_worms");
    }

    #[test]
    fn check_constructor() {
        let c = check("a claim", true, "x = 3");
        assert!(c.passed);
        assert_eq!(c.description, "a claim");
    }

    #[test]
    fn experiment_debug_prints_id() {
        let e = &all()[0];
        assert!(format!("{e:?}").contains("fig1a"));
    }
}
