//! Figures 4 and 6: deployments on the 1,000-node power-law topology
//! (Sections 5.3/5.4).

use super::{check, ExperimentOutput, Quality};
use crate::scenario::{Scenario, TopologySpec};
use crate::strategy::{Deployment, RateLimitParams};
use dynaquar_epidemic::SeriesSet;
use dynaquar_netsim::config::WormBehavior;
use dynaquar_topology::paths::node_coverage;
use dynaquar_topology::roles::Role;

fn power_law_spec(quality: Quality) -> (TopologySpec, usize, u64) {
    match quality {
        Quality::Quick => (
            TopologySpec::PowerLaw {
                nodes: 300,
                edges_per_node: 2,
                seed: 9,
            },
            2,
            120,
        ),
        Quality::Full => (
            TopologySpec::PowerLaw {
                nodes: 1000,
                edges_per_node: 2,
                seed: 9,
            },
            10,
            200,
        ),
    }
}

/// Figure 4: random worm with rate limiting at 5% of end hosts, at edge
/// routers, and at backbone routers.
pub fn fig4(quality: Quality) -> ExperimentOutput {
    let (spec, runs, horizon) = power_law_spec(quality);
    let world = spec.build();
    // Harsh weighted caps plus the Equation-6 per-router allowable rate:
    // the worm's scan volume dwarfs the allowed budget, as in the paper.
    let params = RateLimitParams {
        link_base_cap: 0.3,
        backbone_node_cap: Some(0.05),
        ..RateLimitParams::default()
    };
    let base = Scenario::new(spec)
        .beta(0.8)
        .horizon(horizon)
        .initial_infected(3)
        .runs(runs)
        .params(params);

    let no_rl = base.clone().run_simulated_on(&world);
    let host5 = base
        .clone()
        .deployment(Deployment::Hosts { fraction: 0.05 })
        .run_simulated_on(&world);
    let edge = base
        .clone()
        .deployment(Deployment::EdgeRouters)
        .run_simulated_on(&world);
    let backbone = base
        .clone()
        .deployment(Deployment::Backbone)
        .run_simulated_on(&world);

    // Measure the Equation-6 α realized by the backbone placement.
    let hosts = world.hosts().to_vec();
    let backbone_nodes = world.nodes_with_role(Role::Backbone);
    let alpha = node_coverage(world.routing(), &hosts, &backbone_nodes, false);

    let t50 = |s: &dynaquar_epidemic::TimeSeries| s.time_to_reach(0.5);
    let t_no = t50(&no_rl.infected).unwrap_or(f64::INFINITY);
    let t_host = t50(&host5.infected).unwrap_or(f64::INFINITY);
    let t_edge = t50(&edge.infected).unwrap_or(f64::INFINITY);
    let t_bb = t50(&backbone.infected).unwrap_or(f64::INFINITY);

    let checks = vec![
        check(
            "5% end-host RL is indistinguishable from no RL",
            t_host < 1.3 * t_no,
            format!("t50: no RL {t_no:.1}, 5% hosts {t_host:.1}"),
        ),
        check(
            "edge-router RL yields a slight improvement",
            t_edge >= t_no && t_edge.is_finite(),
            format!("t50: no RL {t_no:.1}, edge {t_edge:.1}"),
        ),
        check(
            "backbone RL is several times slower to 50% infection than host/edge RL (paper: ~5x)",
            t_bb > 2.5 * t_host.min(t_edge),
            format!("t50: hosts {t_host:.1}, edge {t_edge:.1}, backbone {t_bb:.1}"),
        ),
        check(
            "backbone routers cover most host-to-host paths (Equation 6's premise)",
            alpha > 0.5,
            format!("alpha = {alpha:.3}"),
        ),
    ];

    let mut series = SeriesSet::new("Rate Limiting in a Power Law 1000 node topology (simulation)");
    series.push("No RL", no_rl.infected);
    series.push("5% End Host RL", host5.infected);
    series.push("Edge Router RL", edge.infected);
    series.push("Backbone RL", backbone.infected);

    ExperimentOutput {
        id: "fig4",
        title: "Figure 4: simulated RL on a 1000-node power-law topology",
        series,
        notes: vec![
            format!("{spec:?}, runs = {runs}, horizon = {horizon}"),
            format!("measured path coverage alpha = {alpha:.3}"),
            format!("t50: noRL {t_no:.1} host5 {t_host:.1} edge {t_edge:.1} backbone {t_bb:.1}"),
        ],
        checks,
    }
}

/// Figure 6: local-preferential worm with host (5%/30%) and backbone
/// deployments, across subnets.
pub fn fig6(quality: Quality) -> ExperimentOutput {
    // Same 1,000-node power-law topology as Figure 4 ("all experiments
    // in this section"); subnets are the host groups behind each edge
    // router, which the local-preferential worm biases toward.
    let (spec, runs, mut horizon) = power_law_spec(quality);
    horizon += 60; // the throttled LP worm needs extra room to reach 50%
    let world = spec.build();
    let params = RateLimitParams {
        link_base_cap: 0.3,
        backbone_node_cap: Some(0.05),
        ..RateLimitParams::default()
    };
    let base = Scenario::new(spec)
        .behavior(WormBehavior::local_preferential(0.9))
        .beta(0.8)
        .horizon(horizon)
        .initial_infected(2)
        .runs(runs)
        .params(params);

    let no_rl = base.clone().run_simulated_on(&world);
    let host5 = base
        .clone()
        .deployment(Deployment::Hosts { fraction: 0.05 })
        .run_simulated_on(&world);
    let host30 = base
        .clone()
        .deployment(Deployment::Hosts { fraction: 0.30 })
        .run_simulated_on(&world);
    let backbone = base
        .clone()
        .deployment(Deployment::Backbone)
        .run_simulated_on(&world);

    let t50 = |s: &dynaquar_epidemic::TimeSeries| s.time_to_reach(0.5);
    let t_no = t50(&no_rl.infected).unwrap_or(f64::INFINITY);
    let t_h30 = t50(&host30.infected).unwrap_or(f64::INFINITY);
    let t_bb = t50(&backbone.infected).unwrap_or(f64::INFINITY);

    let checks = vec![
        check(
            "even 30% host RL is nearly indistinguishable from no RL",
            t_h30 < 1.6 * t_no,
            format!("t50: no RL {t_no:.1}, 30% hosts {t_h30:.1}"),
        ),
        check(
            "backbone RL is substantially more effective than 30% host RL",
            t_bb > 1.7 * t_h30,
            format!("t50: 30% hosts {t_h30:.1}, backbone {t_bb:.1}"),
        ),
    ];

    let mut series = SeriesSet::new(
        "Rate limiting (RL) for local preferential worms at end hosts and backbone",
    );
    series.push("No RL random propagation", no_rl.infected);
    series.push("5% End Host RL", host5.infected);
    series.push("30% End Host RL", host30.infected);
    series.push("Backbone RL", backbone.infected);

    ExperimentOutput {
        id: "fig6",
        title: "Figure 6: simulated local-preferential worm, host vs backbone RL",
        series,
        notes: vec![
            format!("{spec:?}, runs = {runs}, horizon = {horizon}"),
            format!("t50: noRL {t_no:.1} host30 {t_h30:.1} backbone {t_bb:.1}"),
        ],
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_quick_checks_pass() {
        let out = fig4(Quality::Quick);
        assert_eq!(out.series.len(), 4);
        assert!(out.all_checks_passed(), "{:#?}", out.checks);
    }

    #[test]
    fn fig6_quick_checks_pass() {
        let out = fig6(Quality::Quick);
        assert_eq!(out.series.len(), 4);
        assert!(out.all_checks_passed(), "{:#?}", out.checks);
    }
}
