//! Figures 3 and 5: edge-router rate limiting for random and
//! local-preferential worms (Section 5.2).

use super::{check, ExperimentOutput, Quality};
use crate::scenario::{Scenario, TopologySpec};
use crate::strategy::{Deployment, RateLimitParams};
use dynaquar_epidemic::edge::{ScanAllocation, Targeting, TwoLevelModel};
use dynaquar_epidemic::SeriesSet;
use dynaquar_netsim::config::WormBehavior;

/// Model parameters shared by the Figure 3 panels: 50 subnets of 20
/// hosts, raw scan rate 0.8, local-preferential bias 0.9, edge cap 0.01
/// (the paper's β₂).
fn fig3_models() -> (TwoLevelModel, TwoLevelModel, TwoLevelModel) {
    let base = ScanAllocation {
        scan_rate: 0.8,
        subnets: 50.0,
        hosts_per_subnet: 20.0,
        targeting: Targeting::LocalPreferential { local_bias: 0.9 },
        edge_cap: None,
    };
    let lp_no_rl = TwoLevelModel::from_allocation(&base, 1.0).expect("valid");
    let lp_rl = TwoLevelModel::from_allocation(
        &ScanAllocation {
            edge_cap: Some(0.01),
            ..base
        },
        1.0,
    )
    .expect("valid");
    let random_rl = TwoLevelModel::from_allocation(
        &ScanAllocation {
            targeting: Targeting::Random,
            edge_cap: Some(0.01),
            ..base
        },
        1.0,
    )
    .expect("valid");
    (lp_no_rl, lp_rl, random_rl)
}

/// Figure 3(a): spread across subnets.
pub fn fig3a(_quality: Quality) -> ExperimentOutput {
    let (lp_no_rl, lp_rl, random_rl) = fig3_models();
    let horizon = 300.0;
    let dt = 0.5;

    let mut series = SeriesSet::new(
        "Analytical Model for random and local preferential worms across subnets with RL on edge routers",
    );
    series.push(
        "No RL for local preferential propagation",
        lp_no_rl.across_subnet_series(horizon, dt),
    );
    series.push(
        "Local preferential propagation w/ RL",
        lp_rl.across_subnet_series(horizon, dt),
    );
    series.push(
        "Random propagation w/ RL",
        random_rl.across_subnet_series(horizon, dt),
    );

    // Relative effectiveness: slowdown each worm suffers from the cap.
    let random_no_rl = TwoLevelModel::from_allocation(
        &ScanAllocation {
            scan_rate: 0.8,
            subnets: 50.0,
            hosts_per_subnet: 20.0,
            targeting: Targeting::Random,
            edge_cap: None,
        },
        1.0,
    )
    .expect("valid");
    let slowdown_random = random_no_rl.beta_inter() / random_rl.beta_inter();
    let slowdown_lp = lp_no_rl.beta_inter() / lp_rl.beta_inter();

    let checks = vec![
        check(
            "edge RL is far more effective against random worms than local-preferential ones",
            slowdown_random > 5.0 * slowdown_lp,
            format!("inter-rate slowdown: random {slowdown_random:.1}x, local-pref {slowdown_lp:.1}x"),
        ),
        check(
            "with RL both worm types crawl across subnets relative to the unlimited baseline",
            {
                let t = |m: &TwoLevelModel| {
                    m.across_subnet_series(5000.0, 2.0).time_to_reach(0.5)
                };
                match (t(&lp_no_rl), t(&lp_rl), t(&random_rl)) {
                    (Some(base), Some(lp), Some(rnd)) => lp > 3.0 * base && rnd > 3.0 * base,
                    _ => false,
                }
            },
            "time-to-50%-subnets comparisons".to_string(),
        ),
    ];

    ExperimentOutput {
        id: "fig3a",
        title: "Figure 3(a): analytic edge-router RL across subnets",
        series,
        notes: vec![
            "50 subnets x 20 hosts, scan rate 0.8, LP bias 0.9, edge cap 0.01".to_string(),
            format!(
                "inter-subnet rates: LP no-RL {:.3}, LP RL {:.3}, random RL {:.3}",
                lp_no_rl.beta_inter(),
                lp_rl.beta_inter(),
                random_rl.beta_inter()
            ),
        ],
        checks,
    }
}

/// Figure 3(b): spread within a subnet.
pub fn fig3b(_quality: Quality) -> ExperimentOutput {
    let (lp_no_rl, lp_rl, random_rl) = fig3_models();
    let horizon = 300.0;
    let dt = 0.5;

    let mut series = SeriesSet::new(
        "Analytical Model for random and local preferential worms within subnets with RL on edge routers",
    );
    series.push(
        "No RL for local preferential propagation",
        lp_no_rl.within_subnet_series(horizon, dt),
    );
    series.push(
        "Local preferential propagation w/ RL",
        lp_rl.within_subnet_series(horizon, dt),
    );
    series.push(
        "Random propagation w/ RL",
        random_rl.within_subnet_series(horizon, dt),
    );

    let t_lp_no_rl = lp_no_rl.within_subnet_series(5000.0, 1.0).time_to_reach(0.5);
    let t_lp_rl = lp_rl.within_subnet_series(5000.0, 1.0).time_to_reach(0.5);
    let t_random = random_rl.within_subnet_series(5000.0, 1.0).time_to_reach(0.5);

    let checks = vec![
        check(
            "edge RL does not slow local-preferential spread within the subnet",
            matches!((t_lp_no_rl, t_lp_rl), (Some(a), Some(b)) if (b - a).abs() < 0.05 * a.max(1.0)),
            format!("t50 within subnet: LP no-RL {t_lp_no_rl:?}, LP RL {t_lp_rl:?}"),
        ),
        check(
            "the random worm is far slower inside a subnet than the local-preferential one",
            matches!((t_lp_rl, t_random), (Some(lp), Some(r)) if r > 10.0 * lp),
            format!("t50 within subnet: LP {t_lp_rl:?}, random {t_random:?}"),
        ),
    ];

    ExperimentOutput {
        id: "fig3b",
        title: "Figure 3(b): analytic edge-router RL within subnets",
        series,
        notes: vec![format!(
            "intra-subnet rates: LP {:.3}, random {:.4}",
            lp_rl.beta_intra(),
            random_rl.beta_intra()
        )],
        checks,
    }
}

/// Figure 5: simulated edge-router rate limiting within subnets for
/// random vs local-preferential worms.
pub fn fig5(quality: Quality) -> ExperimentOutput {
    let (spec, runs, horizon) = match quality {
        Quality::Quick => (
            TopologySpec::Subnets {
                backbone: 2,
                subnets: 8,
                hosts_per_subnet: 12,
            },
            2,
            80,
        ),
        Quality::Full => (
            TopologySpec::Subnets {
                backbone: 4,
                subnets: 25,
                hosts_per_subnet: 40,
            },
            10,
            120,
        ),
    };
    let world = spec.build();
    // Edge deployment: weighted caps on the links at edge routers. The
    // uplink (edge router <-> backbone) carries nearly all routing
    // entries, so it receives most of the budget; host access links stay
    // near the floor of 1 pkt/tick but intra-subnet hops are short.
    let params = RateLimitParams {
        link_base_cap: 0.5,
        ..RateLimitParams::default()
    };
    let base = Scenario::new(spec)
        .beta(0.8)
        .horizon(horizon)
        .initial_infected(2)
        .runs(runs)
        .params(params);

    let random_no_rl = base.clone().run_simulated_on(&world);
    let random_rl = base
        .clone()
        .deployment(Deployment::EdgeRouters)
        .run_simulated_on(&world);
    let lp = base.clone().behavior(WormBehavior::local_preferential(0.9));
    let lp_no_rl = lp.clone().run_simulated_on(&world);
    let lp_rl = lp
        .clone()
        .deployment(Deployment::EdgeRouters)
        .run_simulated_on(&world);

    let t50 = |s: &dynaquar_epidemic::TimeSeries| s.time_to_reach(0.5);
    let slow_random = match (t50(&random_no_rl.infected), t50(&random_rl.infected)) {
        (Some(a), Some(b)) => b / a,
        (Some(_), None) => f64::INFINITY,
        _ => f64::NAN,
    };
    let slow_lp = match (t50(&lp_no_rl.infected), t50(&lp_rl.infected)) {
        (Some(a), Some(b)) => b / a,
        _ => f64::NAN,
    };

    let checks = vec![
        check(
            "edge RL yields a noticeable slowdown (>=40%) for random worms",
            slow_random >= 1.4,
            format!("random slowdown at 50% infection = {slow_random:.2}x"),
        ),
        check(
            "edge RL gives very little benefit against local-preferential worms",
            slow_lp.is_finite() && slow_lp < 1.3,
            format!("local-preferential slowdown at 50% infection = {slow_lp:.2}x"),
        ),
    ];

    let mut series =
        SeriesSet::new("Edge router rate limiting (RL) for random and local preferential worms");
    series.push("No RL random propagation", random_no_rl.infected);
    series.push("Edge Router RL for random propagation", random_rl.infected);
    series.push("No RL local preferential", lp_no_rl.infected);
    series.push("Edge Router RL for local preferential", lp_rl.infected);

    ExperimentOutput {
        id: "fig5",
        title: "Figure 5: simulated edge-router RL for random and local-preferential worms",
        series,
        notes: vec![
            format!("{spec:?}, runs = {runs}, horizon = {horizon}"),
            format!("slowdowns at 50%: random {slow_random:.2}x, local-pref {slow_lp:.2}x"),
        ],
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3a_checks_pass() {
        let out = fig3a(Quality::Quick);
        assert_eq!(out.series.len(), 3);
        assert!(out.all_checks_passed(), "{:#?}", out.checks);
    }

    #[test]
    fn fig3b_checks_pass() {
        let out = fig3b(Quality::Quick);
        assert_eq!(out.series.len(), 3);
        assert!(out.all_checks_passed(), "{:#?}", out.checks);
    }

    #[test]
    fn fig5_quick_checks_pass() {
        let out = fig5(Quality::Quick);
        assert_eq!(out.series.len(), 4);
        assert!(out.all_checks_passed(), "{:#?}", out.checks);
    }
}
