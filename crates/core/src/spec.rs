//! Textual scenario specs: parse JSON or TOML into a [`Scenario`]
//! (and back) without ever panicking.
//!
//! This is the wire format of the serving layer: a daemon accepts a
//! spec document, validates it into a [`Scenario`] through
//! [`scenario_from_json`] / [`scenario_from_toml`], and every failure
//! mode — syntax error, unknown field, wrong type, out-of-range value,
//! inexpressible configuration — surfaces as a typed [`SpecError`].
//! The validation here is deliberately at least as strict as the
//! engine's own config validation, so a spec that parses can always be
//! built and run.
//!
//! Both formats share one document model, [`Value`], produced by two
//! hand-rolled parsers (the workspace vendors dependency *stubs*, so
//! there is no serde_json/toml to lean on). The emitters are exact:
//! floats are printed with Rust's shortest round-trip formatting, so
//! `Scenario → spec text → Scenario` is identity — pinned for every
//! registered experiment by [`presets`] and the spec round-trip tests.
//!
//! # Example
//!
//! ```
//! use dynaquar_core::spec;
//!
//! let scenario = spec::scenario_from_toml(r#"
//!     beta = 0.8
//!     horizon = 60
//!     deployment = "hub"
//!
//!     [topology]
//!     kind = "star"
//!     leaves = 99
//! "#).unwrap();
//! let text = spec::scenario_to_toml(&scenario).unwrap();
//! assert_eq!(spec::scenario_from_toml(&text).unwrap(), scenario);
//! ```

use crate::scenario::{Scenario, TopologySpec};
use crate::strategy::{Deployment, RateLimitParams};
use dynaquar_netsim::config::{ImmunizationConfig, ImmunizationTrigger, QuarantineConfig};
use dynaquar_netsim::strategy::SimStrategy;
use dynaquar_netsim::{ShardSpec, WormBehavior};
use dynaquar_topology::lazy::RoutingKind;
use dynaquar_worms::profiles::SelectorKind;
use std::fmt;

/// Which textual format a parse error came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecFormat {
    /// JSON document.
    Json,
    /// TOML document.
    Toml,
}

impl fmt::Display for SpecFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecFormat::Json => f.write_str("JSON"),
            SpecFormat::Toml => f.write_str("TOML"),
        }
    }
}

/// Everything that can be wrong with a scenario spec. Parsing and
/// validation never panic; every failure is one of these variants.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The document is not syntactically valid JSON/TOML.
    Parse {
        /// Input format.
        format: SpecFormat,
        /// 1-based line of the offending input.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A required field is absent.
    MissingField {
        /// Dotted path of the missing field (e.g. `topology.kind`).
        field: String,
    },
    /// A field the schema does not know (typo guard: unknown keys are
    /// rejected, not ignored).
    UnknownField {
        /// Dotted path of the unknown field.
        field: String,
    },
    /// A field holds a value of the wrong type.
    WrongType {
        /// Dotted path of the field.
        field: String,
        /// What the schema expects there.
        expected: &'static str,
    },
    /// A field holds a well-typed but out-of-range or unknown value.
    InvalidValue {
        /// Dotted path of the field.
        field: String,
        /// Why the value is rejected.
        reason: String,
    },
    /// The configuration cannot be expressed in the spec schema (e.g.
    /// a scenario carrying an injected fault plan).
    Unsupported {
        /// What is not expressible.
        what: String,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Parse {
                format,
                line,
                message,
            } => write!(f, "{format} parse error at line {line}: {message}"),
            SpecError::MissingField { field } => write!(f, "missing field `{field}`"),
            SpecError::UnknownField { field } => write!(f, "unknown field `{field}`"),
            SpecError::WrongType { field, expected } => {
                write!(f, "field `{field}` must be {expected}")
            }
            SpecError::InvalidValue { field, reason } => {
                write!(f, "invalid value for `{field}`: {reason}")
            }
            SpecError::Unsupported { what } => write!(f, "unsupported: {what}"),
        }
    }
}

impl std::error::Error for SpecError {}

/// The shared document model both parsers produce and both emitters
/// consume. Object entries keep insertion order so emitted documents
/// are deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (TOML has no null; it never produces this).
    Null,
    /// Boolean.
    Bool(bool),
    /// Integer (JSON numbers without `.`/exponent, TOML integers).
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object / table, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// JSON parsing
// ---------------------------------------------------------------------------

/// Nesting guard: a hostile document of `[[[[…` must fail with a typed
/// error, not a stack overflow.
const MAX_DEPTH: usize = 64;

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> JsonParser<'a> {
    fn new(text: &'a str) -> Self {
        JsonParser {
            bytes: text.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    fn err(&self, message: impl Into<String>) -> SpecError {
        SpecError::Parse {
            format: SpecFormat::Json,
            line: self.line,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.peek() {
            if b == b' ' || b == b'\t' || b == b'\r' || b == b'\n' {
                self.bump();
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), SpecError> {
        match self.bump() {
            Some(b) if b == want => Ok(()),
            Some(b) => Err(self.err(format!(
                "expected `{}`, found `{}`",
                want as char, b as char
            ))),
            None => Err(self.err(format!("expected `{}`, found end of input", want as char))),
        }
    }

    fn parse_document(&mut self) -> Result<Value, SpecError> {
        self.skip_ws();
        let v = self.parse_value(0)?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters after the document"));
        }
        Ok(v)
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, SpecError> {
        if depth > MAX_DEPTH {
            return Err(self.err("document nests too deeply"));
        }
        match self.peek() {
            Some(b'{') => self.parse_object(depth),
            Some(b'[') => self.parse_array(depth),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') | Some(b'f') => self.parse_bool(),
            Some(b'n') => {
                self.parse_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(self.err(format!("unexpected character `{}`", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, word: &str) -> Result<(), SpecError> {
        for want in word.bytes() {
            match self.bump() {
                Some(b) if b == want => {}
                _ => return Err(self.err(format!("expected keyword `{word}`"))),
            }
        }
        Ok(())
    }

    fn parse_bool(&mut self) -> Result<Value, SpecError> {
        if self.peek() == Some(b't') {
            self.parse_keyword("true")?;
            Ok(Value::Bool(true))
        } else {
            self.parse_keyword("false")?;
            Ok(Value::Bool(false))
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value, SpecError> {
        self.expect(b'{')?;
        let mut entries: Vec<(String, Value)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.bump();
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected a string key"));
            }
            let key = self.parse_string()?;
            if entries.iter().any(|(k, _)| *k == key) {
                return Err(self.err(format!("duplicate key `{key}`")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value(depth + 1)?;
            entries.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(entries)),
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value, SpecError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.bump();
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, SpecError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => out.push(self.parse_unicode_escape()?),
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(b) if b < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-assemble the UTF-8 sequence the byte starts
                    // (the input is a &str, so it is valid UTF-8).
                    let len = if b >= 0xF0 {
                        4
                    } else if b >= 0xE0 {
                        3
                    } else {
                        2
                    };
                    let start = self.pos - 1;
                    for _ in 1..len {
                        self.bump();
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn parse_unicode_escape(&mut self) -> Result<char, SpecError> {
        let first = self.parse_hex4()?;
        if (0xD800..=0xDBFF).contains(&first) {
            // High surrogate: a low surrogate escape must follow.
            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                return Err(self.err("unpaired surrogate escape"));
            }
            let second = self.parse_hex4()?;
            if !(0xDC00..=0xDFFF).contains(&second) {
                return Err(self.err("invalid low surrogate"));
            }
            let code = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
            char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"))
        } else {
            char::from_u32(first).ok_or_else(|| self.err("invalid unicode escape"))
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, SpecError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self.bump().ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in \\u escape"))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, SpecError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.bump();
        }
        let mut saw_digit = false;
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.bump();
            saw_digit = true;
        }
        if !saw_digit {
            return Err(self.err("malformed number"));
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.bump();
            let mut frac = false;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.bump();
                frac = true;
            }
            if !frac {
                return Err(self.err("malformed number: digits must follow `.`"));
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.bump();
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.bump();
            }
            let mut exp = false;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.bump();
                exp = true;
            }
            if !exp {
                return Err(self.err("malformed number: digits must follow exponent"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("number out of range"))
        } else {
            match text.parse::<i64>() {
                Ok(i) => Ok(Value::Int(i)),
                // Integer literals beyond i64 degrade to f64 like most
                // JSON decoders do.
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| self.err("number out of range")),
            }
        }
    }
}

/// Parses a JSON document into a [`Value`].
///
/// # Errors
///
/// Returns [`SpecError::Parse`] on any syntax error (with the 1-based
/// line of the offending input).
pub fn parse_json(text: &str) -> Result<Value, SpecError> {
    JsonParser::new(text).parse_document()
}

// ---------------------------------------------------------------------------
// TOML parsing (the subset the spec schema needs: tables, dotted table
// headers, bare keys, strings, integers, floats, booleans, single-line
// arrays, and inline tables)
// ---------------------------------------------------------------------------

struct TomlLine<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> TomlLine<'a> {
    fn err(&self, message: impl Into<String>) -> SpecError {
        SpecError::Parse {
            format: SpecFormat::Toml,
            line: self.line,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_space(&mut self) {
        while matches!(self.peek(), Some(b' ') | Some(b'\t')) {
            self.pos += 1;
        }
    }

    /// True when only whitespace or a comment remains.
    fn at_end(&mut self) -> bool {
        self.skip_space();
        matches!(self.peek(), None | Some(b'#'))
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, SpecError> {
        if depth > MAX_DEPTH {
            return Err(self.err("value nests too deeply"));
        }
        self.skip_space();
        match self.peek() {
            Some(b'"') => Ok(Value::Str(self.parse_basic_string()?)),
            Some(b'\'') => Ok(Value::Str(self.parse_literal_string()?)),
            Some(b'[') => self.parse_array(depth),
            Some(b'{') => self.parse_inline_table(depth),
            Some(b't') | Some(b'f') => self.parse_bool(),
            Some(b) if b == b'-' || b == b'+' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(self.err(format!("unexpected character `{}` in value", b as char))),
            None => Err(self.err("expected a value")),
        }
    }

    fn parse_bool(&mut self) -> Result<Value, SpecError> {
        let word = if self.peek() == Some(b't') { "true" } else { "false" };
        for want in word.bytes() {
            if self.bump() != Some(want) {
                return Err(self.err(format!("expected `{word}`")));
            }
        }
        Ok(Value::Bool(word == "true"))
    }

    fn parse_basic_string(&mut self) -> Result<String, SpecError> {
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => out.push(self.parse_unicode_escape(4)?),
                    Some(b'U') => out.push(self.parse_unicode_escape(8)?),
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    let len = if b >= 0xF0 {
                        4
                    } else if b >= 0xE0 {
                        3
                    } else {
                        2
                    };
                    let start = self.pos - 1;
                    for _ in 1..len {
                        self.bump();
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn parse_unicode_escape(&mut self, digits: usize) -> Result<char, SpecError> {
        let mut code = 0u32;
        for _ in 0..digits {
            let b = self.bump().ok_or_else(|| self.err("truncated unicode escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in unicode escape"))?;
            code = code * 16 + digit;
        }
        char::from_u32(code).ok_or_else(|| self.err("invalid unicode scalar"))
    }

    fn parse_literal_string(&mut self) -> Result<String, SpecError> {
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated literal string")),
                Some(b'\'') => return Ok(out),
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    let len = if b >= 0xF0 {
                        4
                    } else if b >= 0xE0 {
                        3
                    } else {
                        2
                    };
                    let start = self.pos - 1;
                    for _ in 1..len {
                        self.bump();
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value, SpecError> {
        self.bump(); // `[`
        let mut items = Vec::new();
        loop {
            self.skip_space();
            if self.peek() == Some(b']') {
                self.bump();
                return Ok(Value::Array(items));
            }
            items.push(self.parse_value(depth + 1)?);
            self.skip_space();
            match self.peek() {
                Some(b',') => {
                    self.bump();
                }
                Some(b']') => {}
                _ => return Err(self.err("expected `,` or `]` in array (arrays must be single-line)")),
            }
        }
    }

    fn parse_inline_table(&mut self, depth: usize) -> Result<Value, SpecError> {
        self.bump(); // `{`
        let mut entries: Vec<(String, Value)> = Vec::new();
        self.skip_space();
        if self.peek() == Some(b'}') {
            self.bump();
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_space();
            let key = self.parse_key()?;
            if entries.iter().any(|(k, _)| *k == key) {
                return Err(self.err(format!("duplicate key `{key}`")));
            }
            self.skip_space();
            if self.bump() != Some(b'=') {
                return Err(self.err("expected `=` in inline table"));
            }
            let value = self.parse_value(depth + 1)?;
            entries.push((key, value));
            self.skip_space();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(entries)),
                _ => return Err(self.err("expected `,` or `}` in inline table")),
            }
        }
    }

    fn parse_key(&mut self) -> Result<String, SpecError> {
        self.skip_space();
        match self.peek() {
            Some(b'"') => self.parse_basic_string(),
            Some(b'\'') => self.parse_literal_string(),
            Some(b) if b.is_ascii_alphanumeric() || b == b'_' || b == b'-' => {
                let start = self.pos;
                while matches!(self.peek(), Some(b) if b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
                {
                    self.pos += 1;
                }
                Ok(std::str::from_utf8(&self.bytes[start..self.pos])
                    .expect("bare keys are ascii")
                    .to_string())
            }
            _ => Err(self.err("expected a key")),
        }
    }

    fn parse_number(&mut self) -> Result<Value, SpecError> {
        let start = self.pos;
        if matches!(self.peek(), Some(b'+') | Some(b'-')) {
            self.bump();
        }
        let mut saw_digit = false;
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => {
                    saw_digit = true;
                    self.bump();
                }
                b'_' => {
                    self.bump();
                }
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.bump();
                }
                b'+' | b'-' if is_float => {
                    // Exponent sign; only legal right after e/E, which
                    // the f64 parse below enforces.
                    self.bump();
                }
                _ => break,
            }
        }
        if !saw_digit {
            return Err(self.err("malformed number"));
        }
        let text: String = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ascii number")
            .chars()
            .filter(|&c| c != '_')
            .collect();
        let text = text.strip_prefix('+').unwrap_or(&text);
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("malformed float"))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| self.err("integer out of range"))
        }
    }
}

/// Inserts `key = value` into the table addressed by `path`, creating
/// intermediate tables on demand.
fn toml_insert(
    root: &mut Vec<(String, Value)>,
    path: &[String],
    key: String,
    value: Value,
    line: usize,
) -> Result<(), SpecError> {
    let mut table = root;
    for seg in path {
        if !table.iter().any(|(k, _)| k == seg) {
            table.push((seg.clone(), Value::Object(Vec::new())));
        }
        let slot = table
            .iter_mut()
            .find(|(k, _)| k == seg)
            .map(|(_, v)| v)
            .expect("just ensured present");
        match slot {
            Value::Object(entries) => table = entries,
            _ => {
                return Err(SpecError::Parse {
                    format: SpecFormat::Toml,
                    line,
                    message: format!("`{seg}` is not a table"),
                })
            }
        }
    }
    if table.iter().any(|(k, _)| *k == key) {
        return Err(SpecError::Parse {
            format: SpecFormat::Toml,
            line,
            message: format!("duplicate key `{key}`"),
        });
    }
    table.push((key, value));
    Ok(())
}

/// Parses a TOML document into a [`Value`] (always an object at the
/// top level).
///
/// The supported subset covers the spec schema: `[table]` and dotted
/// `[a.b]` headers, bare/quoted keys, basic and literal strings,
/// integers, floats, booleans, single-line arrays, and inline tables.
///
/// # Errors
///
/// Returns [`SpecError::Parse`] on any syntax error (with the 1-based
/// line of the offending input).
pub fn parse_toml(text: &str) -> Result<Value, SpecError> {
    let mut root: Vec<(String, Value)> = Vec::new();
    let mut current_path: Vec<String> = Vec::new();
    let mut seen_headers: Vec<Vec<String>> = Vec::new();
    for (idx, raw_line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let mut cursor = TomlLine {
            bytes: raw_line.as_bytes(),
            pos: 0,
            line: line_no,
        };
        if cursor.at_end() {
            continue;
        }
        if cursor.peek() == Some(b'[') {
            cursor.bump();
            let mut path = vec![cursor.parse_key()?];
            cursor.skip_space();
            while cursor.peek() == Some(b'.') {
                cursor.bump();
                path.push(cursor.parse_key()?);
                cursor.skip_space();
            }
            if cursor.bump() != Some(b']') {
                return Err(cursor.err("expected `]` closing the table header"));
            }
            if !cursor.at_end() {
                return Err(cursor.err("unexpected characters after table header"));
            }
            if seen_headers.contains(&path) {
                return Err(cursor.err(format!("table `[{}]` defined twice", path.join("."))));
            }
            seen_headers.push(path.clone());
            // Materialize the (possibly empty) table now so `[a]` with
            // no keys still round-trips as an empty object.
            toml_ensure_table(&mut root, &path, line_no)?;
            current_path = path;
            continue;
        }
        let key = cursor.parse_key()?;
        cursor.skip_space();
        if cursor.bump() != Some(b'=') {
            return Err(cursor.err("expected `=` after key"));
        }
        let value = cursor.parse_value(0)?;
        if !cursor.at_end() {
            return Err(cursor.err("unexpected characters after value"));
        }
        toml_insert(&mut root, &current_path, key, value, line_no)?;
    }
    Ok(Value::Object(root))
}

fn toml_ensure_table(
    root: &mut Vec<(String, Value)>,
    path: &[String],
    line: usize,
) -> Result<(), SpecError> {
    let mut table = root;
    for seg in path {
        if !table.iter().any(|(k, _)| k == seg) {
            table.push((seg.clone(), Value::Object(Vec::new())));
        }
        let slot = table
            .iter_mut()
            .find(|(k, _)| k == seg)
            .map(|(_, v)| v)
            .expect("just ensured present");
        match slot {
            Value::Object(entries) => table = entries,
            _ => {
                return Err(SpecError::Parse {
                    format: SpecFormat::Toml,
                    line,
                    message: format!("`{seg}` is not a table"),
                })
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Emission
// ---------------------------------------------------------------------------

fn escape_json(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Shortest-round-trip float formatting: `parse(emit(f)) == f` bit for
/// bit, which is what makes `Scenario → spec → Scenario` an identity.
fn format_float(f: f64) -> String {
    let text = format!("{f:?}");
    // `{:?}` prints integral floats as `2.0` and small/large ones in
    // exponent form — both are valid JSON and TOML floats.
    text
}

fn emit_json_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => out.push_str(&format_float(*f)),
        Value::Str(s) => escape_json(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                emit_json_value(item, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_json(k, out);
                out.push(':');
                emit_json_value(val, out);
            }
            out.push('}');
        }
    }
}

/// Emits a [`Value`] as a single-line JSON document.
pub fn emit_json(v: &Value) -> String {
    let mut out = String::new();
    emit_json_value(v, &mut out);
    out
}

fn toml_key(k: &str) -> String {
    let bare = !k.is_empty()
        && k.bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-');
    if bare {
        k.to_string()
    } else {
        let mut quoted = String::new();
        escape_json(k, &mut quoted); // TOML basic strings share JSON's escapes
        quoted
    }
}

fn emit_toml_inline(v: &Value, out: &mut String) {
    match v {
        // TOML has no null; encode it as the string "none" (the schema
        // reads both spellings for optional fields).
        Value::Null => out.push_str("\"none\""),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => out.push_str(&format_float(*f)),
        Value::Str(s) => escape_json(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                emit_toml_inline(item, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push_str("{ ");
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&toml_key(k));
                out.push_str(" = ");
                emit_toml_inline(val, out);
            }
            out.push_str(" }");
        }
    }
}

/// Emits a [`Value`] as a TOML document. Top-level objects become the
/// root table, with object-valued entries rendered as `[section]`
/// tables (scalars first, as TOML requires); any other top-level value
/// is rendered under the key `value`.
pub fn emit_toml(v: &Value) -> String {
    let entries: &[(String, Value)] = match v {
        Value::Object(entries) => entries,
        _ => {
            let mut out = String::from("value = ");
            emit_toml_inline(v, &mut out);
            out.push('\n');
            return out;
        }
    };
    let mut out = String::new();
    for (k, val) in entries {
        if !matches!(val, Value::Object(_)) {
            out.push_str(&toml_key(k));
            out.push_str(" = ");
            emit_toml_inline(val, &mut out);
            out.push('\n');
        }
    }
    for (k, val) in entries {
        if let Value::Object(section) = val {
            out.push('\n');
            out.push('[');
            out.push_str(&toml_key(k));
            out.push_str("]\n");
            for (k2, v2) in section {
                out.push_str(&toml_key(k2));
                out.push_str(" = ");
                emit_toml_inline(v2, &mut out);
                out.push('\n');
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Value → Scenario
// ---------------------------------------------------------------------------

type Entries = [(String, Value)];

fn field_path(ctx: &str, key: &str) -> String {
    if ctx.is_empty() {
        key.to_string()
    } else {
        format!("{ctx}.{key}")
    }
}

fn as_object<'a>(v: &'a Value, field: &str) -> Result<&'a Entries, SpecError> {
    match v {
        Value::Object(entries) => Ok(entries),
        _ => Err(SpecError::WrongType {
            field: field.to_string(),
            expected: "a table",
        }),
    }
}

fn get<'a>(entries: &'a Entries, key: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn require<'a>(entries: &'a Entries, ctx: &str, key: &str) -> Result<&'a Value, SpecError> {
    get(entries, key).ok_or_else(|| SpecError::MissingField {
        field: field_path(ctx, key),
    })
}

fn check_known(entries: &Entries, ctx: &str, allowed: &[&str]) -> Result<(), SpecError> {
    for (k, _) in entries {
        if !allowed.contains(&k.as_str()) {
            return Err(SpecError::UnknownField {
                field: field_path(ctx, k),
            });
        }
    }
    Ok(())
}

fn as_f64(v: &Value, field: &str) -> Result<f64, SpecError> {
    match v {
        Value::Float(f) => Ok(*f),
        Value::Int(i) => Ok(*i as f64),
        _ => Err(SpecError::WrongType {
            field: field.to_string(),
            expected: "a number",
        }),
    }
}

fn as_u64(v: &Value, field: &str) -> Result<u64, SpecError> {
    match v {
        Value::Int(i) if *i >= 0 => Ok(*i as u64),
        Value::Int(_) => Err(SpecError::InvalidValue {
            field: field.to_string(),
            reason: "must not be negative".to_string(),
        }),
        _ => Err(SpecError::WrongType {
            field: field.to_string(),
            expected: "an integer",
        }),
    }
}

fn as_positive_u64(v: &Value, field: &str) -> Result<u64, SpecError> {
    let n = as_u64(v, field)?;
    if n == 0 {
        return Err(SpecError::InvalidValue {
            field: field.to_string(),
            reason: "must be at least 1".to_string(),
        });
    }
    Ok(n)
}

fn as_positive_usize(v: &Value, field: &str) -> Result<usize, SpecError> {
    let n = as_positive_u64(v, field)?;
    usize::try_from(n).map_err(|_| SpecError::InvalidValue {
        field: field.to_string(),
        reason: "exceeds this platform's usize".to_string(),
    })
}

fn as_str<'a>(v: &'a Value, field: &str) -> Result<&'a str, SpecError> {
    v.as_str().ok_or_else(|| SpecError::WrongType {
        field: field.to_string(),
        expected: "a string",
    })
}

fn as_fraction(v: &Value, field: &str) -> Result<f64, SpecError> {
    let f = as_f64(v, field)?;
    if !(0.0..=1.0).contains(&f) {
        return Err(SpecError::InvalidValue {
            field: field.to_string(),
            reason: "must be in [0, 1]".to_string(),
        });
    }
    Ok(f)
}

fn as_positive_f64(v: &Value, field: &str) -> Result<f64, SpecError> {
    let f = as_f64(v, field)?;
    if !(f.is_finite() && f > 0.0) {
        return Err(SpecError::InvalidValue {
            field: field.to_string(),
            reason: "must be a positive finite number".to_string(),
        });
    }
    Ok(f)
}

/// `None` for JSON `null` / the string `"none"`, `Some` otherwise.
fn optional<'a>(v: &'a Value) -> Option<&'a Value> {
    match v {
        Value::Null => None,
        Value::Str(s) if s == "none" => None,
        _ => Some(v),
    }
}

fn topology_from(v: &Value) -> Result<TopologySpec, SpecError> {
    let entries = as_object(v, "topology")?;
    let kind = as_str(require(entries, "topology", "kind")?, "topology.kind")?;
    match kind {
        "star" => {
            check_known(entries, "topology", &["kind", "leaves"])?;
            let leaves =
                as_positive_usize(require(entries, "topology", "leaves")?, "topology.leaves")?;
            Ok(TopologySpec::Star { leaves })
        }
        "power_law" => {
            check_known(entries, "topology", &["kind", "nodes", "edges_per_node", "seed"])?;
            let nodes =
                as_positive_usize(require(entries, "topology", "nodes")?, "topology.nodes")?;
            let edges_per_node = as_positive_usize(
                require(entries, "topology", "edges_per_node")?,
                "topology.edges_per_node",
            )?;
            if nodes <= edges_per_node {
                return Err(SpecError::InvalidValue {
                    field: "topology.nodes".to_string(),
                    reason: "need more nodes than edges-per-node".to_string(),
                });
            }
            let seed = as_u64(require(entries, "topology", "seed")?, "topology.seed")?;
            Ok(TopologySpec::PowerLaw {
                nodes,
                edges_per_node,
                seed,
            })
        }
        "subnets" => {
            check_known(
                entries,
                "topology",
                &["kind", "backbone", "subnets", "hosts_per_subnet"],
            )?;
            Ok(TopologySpec::Subnets {
                backbone: as_positive_usize(
                    require(entries, "topology", "backbone")?,
                    "topology.backbone",
                )?,
                subnets: as_positive_usize(
                    require(entries, "topology", "subnets")?,
                    "topology.subnets",
                )?,
                hosts_per_subnet: as_positive_usize(
                    require(entries, "topology", "hosts_per_subnet")?,
                    "topology.hosts_per_subnet",
                )?,
            })
        }
        other => Err(SpecError::InvalidValue {
            field: "topology.kind".to_string(),
            reason: format!("unknown topology {other:?} (expected star, power_law, or subnets)"),
        }),
    }
}

fn selector_from(v: &Value) -> Result<SelectorKind, SpecError> {
    match v {
        Value::Str(s) => match s.as_str() {
            "random" => Ok(SelectorKind::Random),
            "sequential" => Ok(SelectorKind::Sequential),
            other => Err(SpecError::InvalidValue {
                field: "worm.selector".to_string(),
                reason: format!(
                    "unknown selector {other:?} (expected random, sequential, \
                     {{ local_preferential = bias }}, or {{ permutation = key }})"
                ),
            }),
        },
        Value::Object(entries) => {
            check_known(entries, "worm.selector", &["local_preferential", "permutation"])?;
            match (get(entries, "local_preferential"), get(entries, "permutation")) {
                (Some(bias), None) => Ok(SelectorKind::LocalPreferential {
                    local_bias: as_fraction(bias, "worm.selector.local_preferential")?,
                }),
                (None, Some(key)) => Ok(SelectorKind::Permutation {
                    key: as_u64(key, "worm.selector.permutation")?,
                }),
                _ => Err(SpecError::InvalidValue {
                    field: "worm.selector".to_string(),
                    reason: "exactly one selector variant must be given".to_string(),
                }),
            }
        }
        _ => Err(SpecError::WrongType {
            field: "worm.selector".to_string(),
            expected: "a string or a table",
        }),
    }
}

fn worm_from(v: &Value) -> Result<WormBehavior, SpecError> {
    let entries = as_object(v, "worm")?;
    check_known(entries, "worm", &["selector", "scans_per_tick", "self_patch_after"])?;
    let mut behavior = WormBehavior::random();
    if let Some(sel) = get(entries, "selector") {
        behavior.selector = selector_from(sel)?;
    }
    if let Some(scans) = get(entries, "scans_per_tick") {
        let n = as_positive_u64(scans, "worm.scans_per_tick")?;
        behavior.scans_per_tick = u32::try_from(n).map_err(|_| SpecError::InvalidValue {
            field: "worm.scans_per_tick".to_string(),
            reason: "exceeds u32".to_string(),
        })?;
    }
    if let Some(patch) = get(entries, "self_patch_after").and_then(optional) {
        behavior.self_patch_after = Some(as_positive_u64(patch, "worm.self_patch_after")?);
    }
    Ok(behavior)
}

fn deployment_from(v: &Value) -> Result<Deployment, SpecError> {
    match v {
        Value::Str(s) => match s.as_str() {
            "none" => Ok(Deployment::None),
            "edge_routers" => Ok(Deployment::EdgeRouters),
            "backbone" => Ok(Deployment::Backbone),
            "hub" => Ok(Deployment::Hub),
            other => Err(SpecError::InvalidValue {
                field: "deployment".to_string(),
                reason: format!(
                    "unknown deployment {other:?} (expected none, edge_routers, backbone, \
                     hub, or {{ hosts = fraction }})"
                ),
            }),
        },
        Value::Object(entries) => {
            check_known(entries, "deployment", &["hosts"])?;
            let fraction = as_fraction(
                require(entries, "deployment", "hosts")?,
                "deployment.hosts",
            )?;
            Ok(Deployment::Hosts { fraction })
        }
        _ => Err(SpecError::WrongType {
            field: "deployment".to_string(),
            expected: "a string or a table",
        }),
    }
}

fn params_from(v: &Value) -> Result<RateLimitParams, SpecError> {
    let entries = as_object(v, "params")?;
    check_known(
        entries,
        "params",
        &[
            "link_base_cap",
            "hub_forward_cap",
            "backbone_node_cap",
            "host_window_ticks",
            "host_max_new_targets",
            "host_release_period_ticks",
        ],
    )?;
    let mut params = RateLimitParams::default();
    if let Some(cap) = get(entries, "link_base_cap") {
        params.link_base_cap = as_positive_f64(cap, "params.link_base_cap")?;
    }
    if let Some(cap) = get(entries, "hub_forward_cap") {
        params.hub_forward_cap = as_positive_f64(cap, "params.hub_forward_cap")?;
    }
    if let Some(cap) = get(entries, "backbone_node_cap") {
        params.backbone_node_cap = match optional(cap) {
            None => None,
            Some(c) => Some(as_positive_f64(c, "params.backbone_node_cap")?),
        };
    }
    if let Some(window) = get(entries, "host_window_ticks") {
        params.host_window_ticks = as_positive_u64(window, "params.host_window_ticks")?;
    }
    if let Some(max) = get(entries, "host_max_new_targets") {
        params.host_max_new_targets =
            as_positive_usize(max, "params.host_max_new_targets")?;
    }
    if let Some(release) = get(entries, "host_release_period_ticks") {
        params.host_release_period_ticks = match optional(release) {
            None => None,
            Some(r) => Some(as_positive_u64(r, "params.host_release_period_ticks")?),
        };
    }
    Ok(params)
}

fn immunization_from(v: &Value) -> Result<ImmunizationConfig, SpecError> {
    let entries = as_object(v, "immunization")?;
    check_known(entries, "immunization", &["at_tick", "at_infected_fraction", "mu"])?;
    let trigger = match (get(entries, "at_tick"), get(entries, "at_infected_fraction")) {
        (Some(t), None) => ImmunizationTrigger::AtTick(as_u64(t, "immunization.at_tick")?),
        (None, Some(f)) => ImmunizationTrigger::AtInfectedFraction(as_fraction(
            f,
            "immunization.at_infected_fraction",
        )?),
        _ => {
            return Err(SpecError::InvalidValue {
                field: "immunization".to_string(),
                reason: "exactly one of at_tick / at_infected_fraction must be given"
                    .to_string(),
            })
        }
    };
    let mu = as_fraction(require(entries, "immunization", "mu")?, "immunization.mu")?;
    Ok(ImmunizationConfig { trigger, mu })
}

fn quarantine_from(v: &Value) -> Result<QuarantineConfig, SpecError> {
    let entries = as_object(v, "quarantine")?;
    check_known(entries, "quarantine", &["queue_threshold"])?;
    Ok(QuarantineConfig {
        queue_threshold: as_positive_usize(
            require(entries, "quarantine", "queue_threshold")?,
            "quarantine.queue_threshold",
        )?,
    })
}

fn routing_from(v: &Value) -> Result<RoutingKind, SpecError> {
    match v {
        Value::Str(s) => match s.as_str() {
            "auto" => Ok(RoutingKind::Auto),
            "dense" => Ok(RoutingKind::Dense),
            "hier" => Ok(RoutingKind::Hier),
            other => Err(SpecError::InvalidValue {
                field: "routing".to_string(),
                reason: format!(
                    "unknown routing {other:?} (expected auto, dense, hier, or {{ lazy = N }})"
                ),
            }),
        },
        Value::Object(entries) => {
            check_known(entries, "routing", &["lazy"])?;
            Ok(RoutingKind::Lazy {
                max_cached_destinations: as_positive_usize(
                    require(entries, "routing", "lazy")?,
                    "routing.lazy",
                )?,
            })
        }
        _ => Err(SpecError::WrongType {
            field: "routing".to_string(),
            expected: "a string or a table",
        }),
    }
}

fn strategy_from(v: &Value) -> Result<SimStrategy, SpecError> {
    match as_str(v, "strategy")? {
        "auto" => Ok(SimStrategy::Auto),
        "tick" => Ok(SimStrategy::Tick),
        "event" => Ok(SimStrategy::Event),
        other => Err(SpecError::InvalidValue {
            field: "strategy".to_string(),
            reason: format!("unknown strategy {other:?} (expected auto, tick, or event)"),
        }),
    }
}

fn shards_from(v: &Value) -> Result<ShardSpec, SpecError> {
    match v {
        Value::Str(s) if s == "auto" => Ok(ShardSpec::Auto),
        Value::Int(_) => {
            let n = as_positive_u64(v, "shards")?;
            let n = u32::try_from(n).map_err(|_| SpecError::InvalidValue {
                field: "shards".to_string(),
                reason: "exceeds u32".to_string(),
            })?;
            Ok(ShardSpec::Fixed(n))
        }
        _ => Err(SpecError::WrongType {
            field: "shards".to_string(),
            expected: "\"auto\" or a positive integer",
        }),
    }
}

/// Builds a [`Scenario`] from a parsed spec document.
///
/// # Errors
///
/// Returns the [`SpecError`] variant describing the first schema
/// violation; a returned scenario is guaranteed to build and run
/// without panicking (spec validation is a superset of the engine's
/// config validation).
pub fn scenario_from_value(root: &Value) -> Result<Scenario, SpecError> {
    let entries = as_object(root, "spec")?;
    check_known(
        entries,
        "",
        &[
            "topology",
            "worm",
            "beta",
            "horizon",
            "initial_infected",
            "deployment",
            "params",
            "immunization",
            "quarantine",
            "runs",
            "seed",
            "parallelism",
            "routing",
            "strategy",
            "shards",
            "checkpoint",
        ],
    )?;
    let topology = topology_from(require(entries, "", "topology")?)?;
    let mut scenario = Scenario::new(topology);
    if let Some(v) = get(entries, "worm") {
        scenario = scenario.behavior(worm_from(v)?);
    }
    if let Some(v) = get(entries, "beta") {
        let beta = as_f64(v, "beta")?;
        if !(beta > 0.0 && beta <= 1.0) {
            return Err(SpecError::InvalidValue {
                field: "beta".to_string(),
                reason: "must be in (0, 1]".to_string(),
            });
        }
        scenario = scenario.beta(beta);
    }
    if let Some(v) = get(entries, "horizon") {
        scenario = scenario.horizon(as_positive_u64(v, "horizon")?);
    }
    if let Some(v) = get(entries, "initial_infected") {
        scenario = scenario.initial_infected(as_positive_usize(v, "initial_infected")?);
    }
    if let Some(v) = get(entries, "deployment") {
        scenario = scenario.deployment(deployment_from(v)?);
    }
    if let Some(v) = get(entries, "params") {
        scenario = scenario.params(params_from(v)?);
    }
    if let Some(v) = get(entries, "immunization").and_then(optional) {
        scenario = scenario.immunization(immunization_from(v)?);
    }
    if let Some(v) = get(entries, "quarantine").and_then(optional) {
        scenario = scenario.quarantine(quarantine_from(v)?);
    }
    if let Some(v) = get(entries, "runs") {
        scenario = scenario.runs(as_positive_usize(v, "runs")?);
    }
    if let Some(v) = get(entries, "seed") {
        scenario = scenario.seed(as_u64(v, "seed")?);
    }
    if let Some(v) = get(entries, "parallelism").and_then(optional) {
        scenario = scenario.parallelism(as_positive_usize(v, "parallelism")?);
    }
    if let Some(v) = get(entries, "routing") {
        scenario = scenario.routing(routing_from(v)?);
    }
    if let Some(v) = get(entries, "strategy") {
        scenario = scenario.strategy(strategy_from(v)?);
    }
    if let Some(v) = get(entries, "shards") {
        scenario = scenario.shards(shards_from(v)?);
    }
    if let Some(v) = get(entries, "checkpoint").and_then(optional) {
        let cp = as_object(v, "checkpoint")?;
        check_known(cp, "checkpoint", &["every_ticks", "directory"])?;
        let every = as_positive_u64(
            require(cp, "checkpoint", "every_ticks")?,
            "checkpoint.every_ticks",
        )?;
        let directory = as_str(
            require(cp, "checkpoint", "directory")?,
            "checkpoint.directory",
        )?;
        if directory.is_empty() {
            return Err(SpecError::InvalidValue {
                field: "checkpoint.directory".to_string(),
                reason: "must not be empty".to_string(),
            });
        }
        scenario = scenario.checkpoint_every(every, directory);
    }
    Ok(scenario)
}

/// Parses a JSON scenario spec.
///
/// # Errors
///
/// Returns [`SpecError::Parse`] on malformed JSON and the schema's
/// typed errors on a well-formed document that is not a valid spec.
pub fn scenario_from_json(text: &str) -> Result<Scenario, SpecError> {
    scenario_from_value(&parse_json(text)?)
}

/// Parses a TOML scenario spec.
///
/// # Errors
///
/// Returns [`SpecError::Parse`] on malformed TOML and the schema's
/// typed errors on a well-formed document that is not a valid spec.
pub fn scenario_from_toml(text: &str) -> Result<Scenario, SpecError> {
    scenario_from_value(&parse_toml(text)?)
}

// ---------------------------------------------------------------------------
// Scenario → Value
// ---------------------------------------------------------------------------

fn int_from_u64(n: u64, field: &str) -> Result<Value, SpecError> {
    i64::try_from(n).map(Value::Int).map_err(|_| SpecError::Unsupported {
        what: format!("`{field}` value {n} exceeds the spec's integer range"),
    })
}

fn int_from_usize(n: usize, field: &str) -> Result<Value, SpecError> {
    int_from_u64(n as u64, field)
}

fn topology_to_value(t: &TopologySpec) -> Result<Value, SpecError> {
    Ok(Value::Object(match *t {
        TopologySpec::Star { leaves } => vec![
            ("kind".to_string(), Value::Str("star".to_string())),
            ("leaves".to_string(), int_from_usize(leaves, "topology.leaves")?),
        ],
        TopologySpec::PowerLaw {
            nodes,
            edges_per_node,
            seed,
        } => vec![
            ("kind".to_string(), Value::Str("power_law".to_string())),
            ("nodes".to_string(), int_from_usize(nodes, "topology.nodes")?),
            (
                "edges_per_node".to_string(),
                int_from_usize(edges_per_node, "topology.edges_per_node")?,
            ),
            ("seed".to_string(), int_from_u64(seed, "topology.seed")?),
        ],
        TopologySpec::Subnets {
            backbone,
            subnets,
            hosts_per_subnet,
        } => vec![
            ("kind".to_string(), Value::Str("subnets".to_string())),
            ("backbone".to_string(), int_from_usize(backbone, "topology.backbone")?),
            ("subnets".to_string(), int_from_usize(subnets, "topology.subnets")?),
            (
                "hosts_per_subnet".to_string(),
                int_from_usize(hosts_per_subnet, "topology.hosts_per_subnet")?,
            ),
        ],
    }))
}

fn worm_to_value(b: &WormBehavior) -> Result<Value, SpecError> {
    let selector = match b.selector {
        SelectorKind::Random => Value::Str("random".to_string()),
        SelectorKind::Sequential => Value::Str("sequential".to_string()),
        SelectorKind::LocalPreferential { local_bias } => Value::Object(vec![(
            "local_preferential".to_string(),
            Value::Float(local_bias),
        )]),
        SelectorKind::Permutation { key } => Value::Object(vec![(
            "permutation".to_string(),
            int_from_u64(key, "worm.selector.permutation")?,
        )]),
    };
    let mut entries = vec![
        ("selector".to_string(), selector),
        (
            "scans_per_tick".to_string(),
            Value::Int(i64::from(b.scans_per_tick)),
        ),
    ];
    if let Some(patch) = b.self_patch_after {
        entries.push((
            "self_patch_after".to_string(),
            int_from_u64(patch, "worm.self_patch_after")?,
        ));
    }
    Ok(Value::Object(entries))
}

fn deployment_to_value(d: &Deployment) -> Value {
    match d {
        Deployment::None => Value::Str("none".to_string()),
        Deployment::EdgeRouters => Value::Str("edge_routers".to_string()),
        Deployment::Backbone => Value::Str("backbone".to_string()),
        Deployment::Hub => Value::Str("hub".to_string()),
        Deployment::Hosts { fraction } => {
            Value::Object(vec![("hosts".to_string(), Value::Float(*fraction))])
        }
    }
}

fn params_to_value(p: &RateLimitParams) -> Result<Value, SpecError> {
    let mut entries = vec![
        ("link_base_cap".to_string(), Value::Float(p.link_base_cap)),
        ("hub_forward_cap".to_string(), Value::Float(p.hub_forward_cap)),
        (
            "backbone_node_cap".to_string(),
            match p.backbone_node_cap {
                Some(cap) => Value::Float(cap),
                None => Value::Str("none".to_string()),
            },
        ),
        (
            "host_window_ticks".to_string(),
            int_from_u64(p.host_window_ticks, "params.host_window_ticks")?,
        ),
        (
            "host_max_new_targets".to_string(),
            int_from_usize(p.host_max_new_targets, "params.host_max_new_targets")?,
        ),
    ];
    if let Some(release) = p.host_release_period_ticks {
        entries.push((
            "host_release_period_ticks".to_string(),
            int_from_u64(release, "params.host_release_period_ticks")?,
        ));
    }
    Ok(Value::Object(entries))
}

fn routing_to_value(r: &RoutingKind) -> Result<Value, SpecError> {
    Ok(match r {
        RoutingKind::Auto => Value::Str("auto".to_string()),
        RoutingKind::Dense => Value::Str("dense".to_string()),
        RoutingKind::Hier => Value::Str("hier".to_string()),
        RoutingKind::Lazy {
            max_cached_destinations,
        } => Value::Object(vec![(
            "lazy".to_string(),
            int_from_usize(*max_cached_destinations, "routing.lazy")?,
        )]),
    })
}

/// Renders a [`Scenario`] as a spec document.
///
/// # Errors
///
/// Returns [`SpecError::Unsupported`] for configurations the schema
/// cannot express: injected fault plans, and integer values beyond the
/// spec's `i64` range.
pub fn scenario_to_value(s: &Scenario) -> Result<Value, SpecError> {
    if !s.faults.is_none() {
        return Err(SpecError::Unsupported {
            what: "fault plans are not expressible in scenario specs".to_string(),
        });
    }
    let mut entries = vec![
        ("topology".to_string(), topology_to_value(&s.topology)?),
        ("worm".to_string(), worm_to_value(&s.behavior)?),
        ("beta".to_string(), Value::Float(s.beta)),
        ("horizon".to_string(), int_from_u64(s.horizon, "horizon")?),
        (
            "initial_infected".to_string(),
            int_from_usize(s.initial_infected, "initial_infected")?,
        ),
        ("deployment".to_string(), deployment_to_value(&s.deployment)),
        ("params".to_string(), params_to_value(&s.params)?),
    ];
    if let Some(imm) = s.immunization {
        let mut imm_entries = Vec::new();
        match imm.trigger {
            ImmunizationTrigger::AtTick(t) => {
                imm_entries.push(("at_tick".to_string(), int_from_u64(t, "immunization.at_tick")?));
            }
            ImmunizationTrigger::AtInfectedFraction(f) => {
                imm_entries.push(("at_infected_fraction".to_string(), Value::Float(f)));
            }
        }
        imm_entries.push(("mu".to_string(), Value::Float(imm.mu)));
        entries.push(("immunization".to_string(), Value::Object(imm_entries)));
    }
    if let Some(q) = s.quarantine {
        entries.push((
            "quarantine".to_string(),
            Value::Object(vec![(
                "queue_threshold".to_string(),
                int_from_usize(q.queue_threshold, "quarantine.queue_threshold")?,
            )]),
        ));
    }
    entries.push(("runs".to_string(), int_from_usize(s.runs, "runs")?));
    entries.push(("seed".to_string(), int_from_u64(s.seed, "seed")?));
    if let Some(threads) = s.parallelism {
        entries.push(("parallelism".to_string(), int_from_usize(threads, "parallelism")?));
    }
    entries.push(("routing".to_string(), routing_to_value(&s.routing)?));
    entries.push((
        "strategy".to_string(),
        Value::Str(
            match s.strategy {
                SimStrategy::Auto => "auto",
                SimStrategy::Tick => "tick",
                SimStrategy::Event => "event",
            }
            .to_string(),
        ),
    ));
    entries.push((
        "shards".to_string(),
        match s.shards {
            ShardSpec::Auto => Value::Str("auto".to_string()),
            ShardSpec::Fixed(n) => Value::Int(i64::from(n)),
        },
    ));
    if let Some(cp) = &s.checkpoint {
        let directory = cp.directory.to_str().ok_or_else(|| SpecError::Unsupported {
            what: "checkpoint directory is not valid UTF-8".to_string(),
        })?;
        entries.push((
            "checkpoint".to_string(),
            Value::Object(vec![
                (
                    "every_ticks".to_string(),
                    int_from_u64(cp.every_ticks, "checkpoint.every_ticks")?,
                ),
                ("directory".to_string(), Value::Str(directory.to_string())),
            ]),
        ));
    }
    Ok(Value::Object(entries))
}

/// Renders a [`Scenario`] as a single-line JSON spec.
///
/// # Errors
///
/// See [`scenario_to_value`].
pub fn scenario_to_json(s: &Scenario) -> Result<String, SpecError> {
    Ok(emit_json(&scenario_to_value(s)?))
}

/// Renders a [`Scenario`] as a TOML spec.
///
/// # Errors
///
/// See [`scenario_to_value`].
pub fn scenario_to_toml(s: &Scenario) -> Result<String, SpecError> {
    Ok(emit_toml(&scenario_to_value(s)?))
}

// ---------------------------------------------------------------------------
// Presets
// ---------------------------------------------------------------------------

/// One named, spec-expressible scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Preset {
    /// Stable id — one per registered experiment (the round-trip suite
    /// pins that this set covers [`crate::experiments::all`]).
    pub id: &'static str,
    /// The scenario.
    pub scenario: Scenario,
}

/// A spec-expressible scenario for every registered experiment id, in
/// paper order.
///
/// These mirror the configurations the experiment runners build
/// internally (scaled to quick sizes); the spec round-trip suite feeds
/// each one through `Scenario → spec → Scenario` in both formats and
/// asserts identity, and the daemon serves them under the `preset`
/// verb. Together they exercise every leaf of the schema: all three
/// topologies, all selector kinds, all deployments, delaying filters,
/// quarantine, immunization triggers, routing/strategy/shard overrides,
/// and checkpoint policies.
pub fn presets() -> Vec<Preset> {
    use dynaquar_netsim::strategy::SimStrategy as Strategy;
    let star = TopologySpec::Star { leaves: 199 };
    let power_law = TopologySpec::PowerLaw {
        nodes: 1000,
        edges_per_node: 2,
        seed: 3,
    };
    let subnets = TopologySpec::Subnets {
        backbone: 4,
        subnets: 20,
        hosts_per_subnet: 50,
    };
    let preset = |id, scenario| Preset { id, scenario };
    vec![
        preset("fig1a", Scenario::new(star).beta(0.8).horizon(100).runs(4)),
        preset(
            "fig1b",
            Scenario::new(star)
                .beta(0.8)
                .horizon(150)
                .deployment(Deployment::Hub)
                .runs(10),
        ),
        preset(
            "fig2",
            Scenario::new(star)
                .beta(0.8)
                .horizon(120)
                .deployment(Deployment::Hosts { fraction: 0.5 }),
        ),
        preset(
            "fig3a",
            Scenario::new(subnets)
                .deployment(Deployment::EdgeRouters)
                .horizon(150)
                .runs(4),
        ),
        preset(
            "fig3b",
            Scenario::new(subnets)
                .deployment(Deployment::EdgeRouters)
                .behavior(WormBehavior::local_preferential(0.9))
                .horizon(150)
                .runs(4),
        ),
        preset(
            "fig4",
            Scenario::new(power_law)
                .initial_infected(3)
                .horizon(200)
                .deployment(Deployment::Hosts { fraction: 1.0 })
                .routing(RoutingKind::Dense),
        ),
        preset(
            "fig5",
            Scenario::new(power_law)
                .deployment(Deployment::EdgeRouters)
                .horizon(200)
                .seed(7),
        ),
        preset(
            "fig6",
            Scenario::new(power_law)
                .behavior(WormBehavior::local_preferential(0.9))
                .deployment(Deployment::Backbone)
                .horizon(200)
                .strategy(Strategy::Tick),
        ),
        preset(
            "fig7a",
            Scenario::new(star)
                .immunization(ImmunizationConfig {
                    trigger: ImmunizationTrigger::AtTick(8),
                    mu: 0.05,
                })
                .horizon(120),
        ),
        preset(
            "fig7b",
            Scenario::new(star)
                .immunization(ImmunizationConfig {
                    trigger: ImmunizationTrigger::AtTick(8),
                    mu: 0.05,
                })
                .deployment(Deployment::Hub)
                .horizon(120),
        ),
        preset(
            "fig8a",
            Scenario::new(subnets)
                .immunization(ImmunizationConfig {
                    trigger: ImmunizationTrigger::AtInfectedFraction(0.2),
                    mu: 0.05,
                })
                .horizon(120)
                .strategy(Strategy::Event),
        ),
        preset(
            "fig8b",
            Scenario::new(subnets)
                .immunization(ImmunizationConfig {
                    trigger: ImmunizationTrigger::AtInfectedFraction(0.2),
                    mu: 0.05,
                })
                .deployment(Deployment::Backbone)
                .horizon(120)
                .shards(ShardSpec::Fixed(2)),
        ),
        preset(
            "fig9a",
            Scenario::new(star)
                .beta(0.6)
                .horizon(80)
                .deployment(Deployment::Hosts { fraction: 1.0 })
                .seed(9)
                .parallelism(2),
        ),
        preset(
            "fig9b",
            Scenario::new(star)
                .behavior(WormBehavior::random().with_scan_rate(3))
                .beta(0.6)
                .horizon(80)
                .routing(RoutingKind::Lazy {
                    max_cached_destinations: 16,
                }),
        ),
        preset(
            "fig10",
            Scenario::new(star)
                .deployment(Deployment::Hosts { fraction: 1.0 })
                .params(RateLimitParams {
                    host_window_ticks: 50,
                    host_max_new_targets: 2,
                    ..RateLimitParams::default()
                })
                .horizon(100),
        ),
        preset(
            "tab_limits",
            // The dynamic-quarantine configuration: delaying host
            // filters feed the queue-threshold detector.
            Scenario::new(star)
                .deployment(Deployment::Hosts { fraction: 1.0 })
                .params(RateLimitParams {
                    host_window_ticks: 200,
                    host_max_new_targets: 1,
                    host_release_period_ticks: Some(10),
                    ..RateLimitParams::default()
                })
                .quarantine(QuarantineConfig { queue_threshold: 3 })
                .horizon(200)
                .seed(21),
        ),
        preset(
            "tab_worms",
            // Welchia-style: fast scanner that self-patches.
            Scenario::new(star)
                .behavior(
                    WormBehavior::random()
                        .with_scan_rate(3)
                        .with_self_patch_after(12),
                )
                .horizon(300)
                .seed(31),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_parses_scalars_and_structure() {
        let v = parse_json(r#"{"a": 1, "b": -2.5, "c": [true, null, "x\n"], "d": {"e": 1e3}}"#)
            .unwrap();
        assert_eq!(v.get("a"), Some(&Value::Int(1)));
        assert_eq!(v.get("b"), Some(&Value::Float(-2.5)));
        assert_eq!(
            v.get("c"),
            Some(&Value::Array(vec![
                Value::Bool(true),
                Value::Null,
                Value::Str("x\n".to_string()),
            ]))
        );
        assert_eq!(v.get("d").unwrap().get("e"), Some(&Value::Float(1000.0)));
    }

    #[test]
    fn json_errors_carry_line_numbers() {
        let err = parse_json("{\n  \"a\": 1,\n  \"b\": }\n").unwrap_err();
        match err {
            SpecError::Parse { format, line, .. } => {
                assert_eq!(format, SpecFormat::Json);
                assert_eq!(line, 3);
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn json_rejects_trailing_garbage_and_duplicates() {
        assert!(matches!(parse_json("{} x"), Err(SpecError::Parse { .. })));
        assert!(matches!(
            parse_json(r#"{"a": 1, "a": 2}"#),
            Err(SpecError::Parse { .. })
        ));
    }

    #[test]
    fn json_depth_bomb_is_a_typed_error() {
        let bomb = "[".repeat(10_000);
        assert!(matches!(parse_json(&bomb), Err(SpecError::Parse { .. })));
    }

    #[test]
    fn json_unicode_escapes() {
        let v = parse_json(r#"{"s": "é😀"}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("é😀"));
    }

    #[test]
    fn toml_parses_tables_and_inline_values() {
        let v = parse_toml(
            r#"
            # a comment
            beta = 0.8
            deployment = { hosts = 0.5 }
            tags = ["a", "b"]

            [topology]
            kind = "star"  # trailing comment
            leaves = 99
            "#,
        )
        .unwrap();
        assert_eq!(v.get("beta"), Some(&Value::Float(0.8)));
        assert_eq!(
            v.get("deployment").unwrap().get("hosts"),
            Some(&Value::Float(0.5))
        );
        assert_eq!(v.get("topology").unwrap().get("leaves"), Some(&Value::Int(99)));
        assert_eq!(
            v.get("tags"),
            Some(&Value::Array(vec![
                Value::Str("a".to_string()),
                Value::Str("b".to_string()),
            ]))
        );
    }

    #[test]
    fn toml_dotted_headers_nest() {
        let v = parse_toml("[a.b]\nc = 1\n").unwrap();
        assert_eq!(v.get("a").unwrap().get("b").unwrap().get("c"), Some(&Value::Int(1)));
    }

    #[test]
    fn toml_errors_carry_line_numbers() {
        let err = parse_toml("beta = 0.8\nhorizon =\n").unwrap_err();
        match err {
            SpecError::Parse { format, line, .. } => {
                assert_eq!(format, SpecFormat::Toml);
                assert_eq!(line, 2);
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn toml_rejects_duplicate_keys_and_tables() {
        assert!(matches!(parse_toml("a = 1\na = 2\n"), Err(SpecError::Parse { .. })));
        assert!(matches!(
            parse_toml("[t]\n[t]\n"),
            Err(SpecError::Parse { .. })
        ));
    }

    #[test]
    fn emitters_round_trip_through_their_parsers() {
        let v = Value::Object(vec![
            ("f".to_string(), Value::Float(0.1 + 0.2)),
            ("i".to_string(), Value::Int(-7)),
            ("s".to_string(), Value::Str("with \"quotes\" and \n".to_string())),
            (
                "a".to_string(),
                Value::Array(vec![Value::Int(1), Value::Float(2.5)]),
            ),
            // Objects last: TOML emission orders sections after
            // scalars, and the schema is order-insensitive anyway.
            (
                "o".to_string(),
                Value::Object(vec![("k".to_string(), Value::Bool(true))]),
            ),
        ]);
        assert_eq!(parse_json(&emit_json(&v)).unwrap(), v);
        assert_eq!(parse_toml(&emit_toml(&v)).unwrap(), v);
    }

    #[test]
    fn minimal_spec_uses_defaults() {
        let s = scenario_from_json(r#"{"topology": {"kind": "star", "leaves": 49}}"#).unwrap();
        assert_eq!(s, Scenario::new(TopologySpec::Star { leaves: 49 }));
    }

    #[test]
    fn unknown_fields_are_rejected() {
        let err = scenario_from_json(
            r#"{"topology": {"kind": "star", "leaves": 49}, "betaa": 0.5}"#,
        )
        .unwrap_err();
        assert_eq!(
            err,
            SpecError::UnknownField {
                field: "betaa".to_string()
            }
        );
    }

    #[test]
    fn missing_topology_is_typed() {
        assert_eq!(
            scenario_from_json("{}").unwrap_err(),
            SpecError::MissingField {
                field: "topology".to_string()
            }
        );
    }

    #[test]
    fn out_of_range_values_are_typed() {
        let base = |extra: &str| {
            format!(r#"{{"topology": {{"kind": "star", "leaves": 49}}, {extra}}}"#)
        };
        assert!(matches!(
            scenario_from_json(&base(r#""beta": 1.5"#)).unwrap_err(),
            SpecError::InvalidValue { field, .. } if field == "beta"
        ));
        assert!(matches!(
            scenario_from_json(&base(r#""horizon": 0"#)).unwrap_err(),
            SpecError::InvalidValue { field, .. } if field == "horizon"
        ));
        assert!(matches!(
            scenario_from_json(&base(r#""deployment": {"hosts": 2.0}"#)).unwrap_err(),
            SpecError::InvalidValue { field, .. } if field == "deployment.hosts"
        ));
        assert!(matches!(
            scenario_from_json(&base(r#""shards": 0"#)).unwrap_err(),
            SpecError::InvalidValue { field, .. } if field == "shards"
        ));
    }

    #[test]
    fn wrong_types_are_typed() {
        let err = scenario_from_json(
            r#"{"topology": {"kind": "star", "leaves": 49}, "beta": "high"}"#,
        )
        .unwrap_err();
        assert_eq!(
            err,
            SpecError::WrongType {
                field: "beta".to_string(),
                expected: "a number",
            }
        );
    }

    #[test]
    fn every_preset_round_trips_in_both_formats() {
        for Preset { id, scenario } in presets() {
            let json = scenario_to_json(&scenario).unwrap();
            assert_eq!(
                scenario_from_json(&json).unwrap(),
                scenario,
                "JSON round-trip diverged for preset {id}: {json}"
            );
            let toml = scenario_to_toml(&scenario).unwrap();
            assert_eq!(
                scenario_from_toml(&toml).unwrap(),
                scenario,
                "TOML round-trip diverged for preset {id}:\n{toml}"
            );
        }
    }

    #[test]
    fn presets_cover_every_registered_experiment() {
        let preset_ids: Vec<&str> = presets().iter().map(|p| p.id).collect();
        for exp in crate::experiments::all() {
            assert!(
                preset_ids.contains(&exp.id),
                "no spec preset for experiment {}",
                exp.id
            );
        }
        assert_eq!(preset_ids.len(), crate::experiments::all().len());
    }

    #[test]
    fn fault_plans_are_unsupported_in_specs() {
        let s = Scenario::new(TopologySpec::Star { leaves: 9 })
            .faults(dynaquar_netsim::FaultPlan::none().with_link_loss(0.1, 0.1));
        assert!(matches!(
            scenario_to_value(&s).unwrap_err(),
            SpecError::Unsupported { .. }
        ));
    }

    #[test]
    fn delaying_filter_and_quarantine_round_trip() {
        let s = Scenario::new(TopologySpec::Star { leaves: 199 })
            .deployment(Deployment::Hosts { fraction: 1.0 })
            .params(RateLimitParams {
                host_release_period_ticks: Some(10),
                ..RateLimitParams::default()
            })
            .quarantine(QuarantineConfig { queue_threshold: 3 });
        let json = scenario_to_json(&s).unwrap();
        let back = scenario_from_json(&json).unwrap();
        assert_eq!(back, s);
        // The delaying filter actually materializes.
        let filter = back.sim_config_for(&back.build_world());
        drop(filter);
    }

    #[test]
    fn spec_error_display_is_informative() {
        let err = SpecError::InvalidValue {
            field: "beta".to_string(),
            reason: "must be in (0, 1]".to_string(),
        };
        assert_eq!(err.to_string(), "invalid value for `beta`: must be in (0, 1]");
        let err = SpecError::Parse {
            format: SpecFormat::Toml,
            line: 4,
            message: "boom".to_string(),
        };
        assert!(err.to_string().contains("TOML parse error at line 4"));
    }
}
