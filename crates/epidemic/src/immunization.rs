//! Delayed dynamic immunization (Section 6), with and without backbone
//! rate limiting.
//!
//! The immunization process starts at time `d` (for example, once 20 % of
//! hosts are infected). From then on every unpatched host — susceptible or
//! infected — is patched with probability `µ` per time unit:
//!
//! ```text
//! t ≤ d:  dI/dt = β I (N − I)/N
//! t > d:  dI/dt = β I (N − I)/N − µ I,      dN/dt = −µ N
//! ```
//!
//! Unlike the traditional models the paper cites, `µ` removes hosts from
//! *both* the infected and susceptible pools ("both infected and
//! susceptible hosts will be patched, immunized and consequently removed
//! from the susceptible population").
//!
//! The combination with backbone rate limiting (Section 6.2) replaces `β`
//! with `β(1 − α)` plus the residual `δ` term of Equation 6.
//!
//! Besides the instantaneous infected fraction `I/N₀` (Figure 7), the
//! model tracks the **cumulative ever-infected fraction** (Figure 8's
//! y-axis), which is what an operator ultimately cares about: how much of
//! the population the worm ever reached before patching won.

use crate::backbone::ADDRESS_SPACE;
use crate::error::{ensure_fraction, ensure_non_negative, ensure_positive, Error};
use crate::logistic::Logistic;
use crate::ode::{solve_fixed, OdeSystem, Rk4};
use crate::series::TimeSeries;
use serde::{Deserialize, Serialize};

/// Backbone rate-limiting parameters layered onto the immunization model
/// (Section 6.2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BackboneParams {
    /// Fraction of IP-to-IP paths covered by rate-limited routers.
    pub alpha: f64,
    /// Average allowed router rate (the `r` of Equation 6).
    pub r: f64,
}

/// The delayed-immunization model of Section 6.
///
/// State: infected hosts `I`, unpatched population `N`, and cumulative
/// infections `E` (ever infected).
///
/// # Example
///
/// ```
/// use dynaquar_epidemic::immunization::DelayedImmunization;
///
/// # fn main() -> Result<(), dynaquar_epidemic::Error> {
/// let m = DelayedImmunization::new(1000.0, 0.8, 0.1, 1.0)?;
/// // Immunization starting when 20% are infected caps the damage.
/// let d = m.delay_for_fraction(0.2)?;
/// let ever = m.ever_infected_series(d, 80.0, 0.01).final_value();
/// assert!(ever < 0.9 && ever > 0.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DelayedImmunization {
    n0: f64,
    beta: f64,
    mu: f64,
    i0: f64,
    backbone: Option<BackboneParams>,
}

impl DelayedImmunization {
    /// Creates the model: initial susceptible population `n0`, contact
    /// rate `beta`, per-time-unit patch probability `mu`, initial
    /// infections `i0`. No rate limiting.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for out-of-domain parameters.
    pub fn new(n0: f64, beta: f64, mu: f64, i0: f64) -> Result<Self, Error> {
        ensure_positive("n0", n0)?;
        ensure_positive("beta", beta)?;
        ensure_non_negative("mu", mu)?;
        ensure_positive("i0", i0)?;
        if i0 >= n0 {
            return Err(Error::InvalidParameter {
                name: "i0",
                value: i0,
                reason: "initial infections must be below the population size",
            });
        }
        Ok(DelayedImmunization {
            n0,
            beta,
            mu,
            i0,
            backbone: None,
        })
    }

    /// Adds backbone rate limiting (Section 6.2) to the model.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when `alpha ∉ [0, 1]` or
    /// `r < 0`.
    pub fn with_backbone(mut self, alpha: f64, r: f64) -> Result<Self, Error> {
        ensure_fraction("alpha", alpha)?;
        ensure_non_negative("r", r)?;
        self.backbone = Some(BackboneParams { alpha, r });
        Ok(self)
    }

    /// The effective pre-immunization growth rate: `β` without rate
    /// limiting, `γ = β(1 − α)` with it.
    pub fn effective_rate(&self) -> f64 {
        match self.backbone {
            Some(bb) => self.beta * (1.0 - bb.alpha),
            None => self.beta,
        }
    }

    /// The time `d` at which the infection (before any immunization)
    /// reaches `fraction` — the paper triggers immunization "after a
    /// certain percentage of hosts are infected".
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnreachableLevel`] for fractions the pre-patching
    /// model never reaches.
    pub fn delay_for_fraction(&self, fraction: f64) -> Result<f64, Error> {
        Logistic::new(self.n0, self.effective_rate(), self.i0)?.time_to_fraction(fraction)
    }

    fn system(&self, delay: f64) -> ImmunizationSystem {
        ImmunizationSystem {
            model: *self,
            delay,
        }
    }

    fn solve(&self, delay: f64, horizon: f64, dt: f64) -> crate::ode::Solution {
        let sys = self.system(delay);
        solve_fixed(
            &sys,
            &mut Rk4::new(3),
            0.0,
            &[self.i0, self.n0, self.i0],
            horizon,
            dt,
        )
    }

    /// Instantaneous infected fraction `I(t)/N₀` (Figure 7 y-axis) with
    /// immunization starting at time `delay`.
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0`, `horizon < 0`, or `delay < 0`.
    pub fn series(&self, delay: f64, horizon: f64, dt: f64) -> TimeSeries {
        assert!(delay >= 0.0, "delay must be non-negative");
        self.solve(delay, horizon, dt)
            .component(0)
            .scaled(1.0 / self.n0)
    }

    /// Cumulative ever-infected fraction `E(t)/N₀` (Figure 8 y-axis).
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0`, `horizon < 0`, or `delay < 0`.
    pub fn ever_infected_series(&self, delay: f64, horizon: f64, dt: f64) -> TimeSeries {
        assert!(delay >= 0.0, "delay must be non-negative");
        self.solve(delay, horizon, dt)
            .component(2)
            .scaled(1.0 / self.n0)
    }

    /// Remaining unpatched population fraction `N(t)/N₀`.
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0`, `horizon < 0`, or `delay < 0`.
    pub fn unpatched_series(&self, delay: f64, horizon: f64, dt: f64) -> TimeSeries {
        assert!(delay >= 0.0, "delay must be non-negative");
        self.solve(delay, horizon, dt)
            .component(1)
            .scaled(1.0 / self.n0)
    }

    /// The paper's closed-form approximation for `I(t)/N₀` after the
    /// delay: `e^{(λ−µ)(t−d)} / (c₀ + e^{λ(t−d)})` where `λ` is the
    /// effective rate and `c₀` matches the infected fraction at `t = d`.
    pub fn post_delay_approx(&self, delay: f64, t: f64) -> f64 {
        let lambda = self.effective_rate();
        let f_d = Logistic::new(self.n0, lambda, self.i0)
            .map(|l| l.fraction_at(delay))
            .unwrap_or(0.0);
        if t <= delay {
            return f_d;
        }
        let c0 = (1.0 - f_d) / f_d;
        let dt = t - delay;
        ((lambda - self.mu) * dt).exp() / (c0 + (lambda * dt).exp())
    }
}

/// Time-varying immunization — the extension the paper names but leaves
/// unexplored: "the probability of immunization may increase as the worm
/// spreads and as the vulnerability it exploits becomes widely
/// publicized... the rate of immunization observes a bell curve."
///
/// The patch rate here is the Gaussian
/// `µ(t) = µ_peak · exp(−(t − t_peak)² / (2σ²))` for `t > d`, replacing
/// [`DelayedImmunization`]'s constant µ.
///
/// # Example
///
/// ```
/// use dynaquar_epidemic::immunization::BellCurveImmunization;
///
/// # fn main() -> Result<(), dynaquar_epidemic::Error> {
/// let m = BellCurveImmunization::new(1000.0, 0.8, 1.0, 0.25, 20.0, 8.0)?;
/// let ever = m.ever_infected_series(8.0, 200.0, 0.05).final_value();
/// assert!(ever < 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BellCurveImmunization {
    n0: f64,
    beta: f64,
    i0: f64,
    mu_peak: f64,
    t_peak: f64,
    sigma: f64,
}

impl BellCurveImmunization {
    /// Creates the model: population `n0`, contact rate `beta`, initial
    /// infections `i0`, peak patch rate `mu_peak` reached at time
    /// `t_peak`, with a Gaussian width `sigma`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for out-of-domain parameters.
    pub fn new(
        n0: f64,
        beta: f64,
        i0: f64,
        mu_peak: f64,
        t_peak: f64,
        sigma: f64,
    ) -> Result<Self, Error> {
        ensure_positive("n0", n0)?;
        ensure_positive("beta", beta)?;
        ensure_positive("i0", i0)?;
        ensure_non_negative("mu_peak", mu_peak)?;
        ensure_non_negative("t_peak", t_peak)?;
        ensure_positive("sigma", sigma)?;
        if i0 >= n0 {
            return Err(Error::InvalidParameter {
                name: "i0",
                value: i0,
                reason: "initial infections must be below the population size",
            });
        }
        Ok(BellCurveImmunization {
            n0,
            beta,
            i0,
            mu_peak,
            t_peak,
            sigma,
        })
    }

    /// The instantaneous patch rate `µ(t)` (zero before `delay`).
    pub fn mu_at(&self, t: f64, delay: f64) -> f64 {
        if t <= delay {
            return 0.0;
        }
        let z = (t - self.t_peak) / self.sigma;
        self.mu_peak * (-0.5 * z * z).exp()
    }

    fn solve(&self, delay: f64, horizon: f64, dt: f64) -> crate::ode::Solution {
        let sys = BellSystem { model: *self, delay };
        solve_fixed(
            &sys,
            &mut Rk4::new(3),
            0.0,
            &[self.i0, self.n0, self.i0],
            horizon,
            dt,
        )
    }

    /// Instantaneous infected fraction `I(t)/N₀` with the patching wave
    /// enabled from time `delay`.
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0`, `horizon < 0`, or `delay < 0`.
    pub fn series(&self, delay: f64, horizon: f64, dt: f64) -> TimeSeries {
        assert!(delay >= 0.0, "delay must be non-negative");
        self.solve(delay, horizon, dt)
            .component(0)
            .scaled(1.0 / self.n0)
    }

    /// Cumulative ever-infected fraction `E(t)/N₀`.
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0`, `horizon < 0`, or `delay < 0`.
    pub fn ever_infected_series(&self, delay: f64, horizon: f64, dt: f64) -> TimeSeries {
        assert!(delay >= 0.0, "delay must be non-negative");
        self.solve(delay, horizon, dt)
            .component(2)
            .scaled(1.0 / self.n0)
    }
}

/// ODE system for the bell-curve model: state `[I, N, E]`.
#[derive(Debug, Clone, Copy)]
struct BellSystem {
    model: BellCurveImmunization,
    delay: f64,
}

impl OdeSystem for BellSystem {
    fn dim(&self) -> usize {
        3
    }

    fn deriv(&self, t: f64, y: &[f64], dy: &mut [f64]) {
        let m = &self.model;
        let i = y[0].max(0.0);
        let n = y[1].max(0.0);
        let s = (n - i).max(0.0);
        let frac_s = if n > 0.0 { s / n } else { 0.0 };
        let new_infections = m.beta * i * frac_s;
        let mu = m.mu_at(t, self.delay);
        dy[0] = new_infections - mu * i;
        dy[1] = -mu * n;
        dy[2] = new_infections;
    }
}

/// The piecewise ODE system: state `[I, N, E]`.
#[derive(Debug, Clone, Copy)]
struct ImmunizationSystem {
    model: DelayedImmunization,
    delay: f64,
}

impl OdeSystem for ImmunizationSystem {
    fn dim(&self) -> usize {
        3
    }

    fn deriv(&self, t: f64, y: &[f64], dy: &mut [f64]) {
        let m = &self.model;
        let i = y[0].max(0.0);
        let n = y[1].max(0.0);
        // Susceptible pool: unpatched hosts that are not infected.
        let s = (n - i).max(0.0);
        let frac_s = if n > 0.0 { s / n } else { 0.0 };
        let new_infections = match m.backbone {
            None => m.beta * i * frac_s,
            Some(bb) => {
                let delta = (i * m.beta * bb.alpha).min(bb.r * n / ADDRESS_SPACE);
                (i * m.beta * (1.0 - bb.alpha) + delta) * frac_s
            }
        };
        if t <= self.delay {
            dy[0] = new_infections;
            dy[1] = 0.0;
        } else {
            dy[0] = new_infections - m.mu * i;
            dy[1] = -m.mu * n;
        }
        dy[2] = new_infections;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_model() -> DelayedImmunization {
        DelayedImmunization::new(1000.0, 0.8, 0.1, 1.0).unwrap()
    }

    #[test]
    fn before_delay_matches_logistic() {
        let m = paper_model();
        let s = m.series(30.0, 25.0, 0.01);
        let l = Logistic::new(1000.0, 0.8, 1.0).unwrap().series(0.0, 25.0, 0.01);
        assert!(s.max_abs_difference(&l) < 1e-6);
    }

    #[test]
    fn infection_declines_after_saturation_with_patching() {
        let m = paper_model();
        let s = m.series(10.0, 200.0, 0.01);
        // Infected fraction eventually heads toward zero.
        assert!(s.final_value() < 0.1);
        // But it peaked well above the 10-tick level first.
        assert!(s.max_value() > s.value_at(10.0).unwrap());
    }

    #[test]
    fn earlier_immunization_caps_ever_infected_lower() {
        let m = paper_model();
        let d20 = m.delay_for_fraction(0.2).unwrap();
        let d50 = m.delay_for_fraction(0.5).unwrap();
        let d80 = m.delay_for_fraction(0.8).unwrap();
        let ever = |d: f64| m.ever_infected_series(d, 120.0, 0.01).final_value();
        let (e20, e50, e80) = (ever(d20), ever(d50), ever(d80));
        assert!(e20 < e50 && e50 < e80, "{e20} {e50} {e80}");
        // Figure 8(a) magnitudes: ~80%, ~90%, ~98%.
        assert!((0.6..=0.92).contains(&e20), "e20 = {e20}");
        assert!((0.75..=0.97).contains(&e50), "e50 = {e50}");
        assert!(e80 > 0.9, "e80 = {e80}");
    }

    #[test]
    fn rate_limiting_reduces_ever_infected_figure8b() {
        // Figure 8(b): with backbone RL, immunization at the same
        // *infection level* yields a lower total ever-infected.
        let plain = paper_model();
        let rl = paper_model().with_backbone(0.5, 0.0).unwrap();
        let d_plain = plain.delay_for_fraction(0.2).unwrap();
        let d_rl = rl.delay_for_fraction(0.2).unwrap();
        let e_plain = plain.ever_infected_series(d_plain, 400.0, 0.02).final_value();
        let e_rl = rl.ever_infected_series(d_rl, 400.0, 0.02).final_value();
        assert!(
            e_rl < e_plain,
            "RL should reduce damage: {e_rl} vs {e_plain}"
        );
    }

    #[test]
    fn delay_for_fraction_respects_rate_limit() {
        let plain = paper_model();
        let rl = paper_model().with_backbone(0.9, 0.0).unwrap();
        // With RL the infection takes ~10x longer to reach 20%.
        let d_plain = plain.delay_for_fraction(0.2).unwrap();
        let d_rl = rl.delay_for_fraction(0.2).unwrap();
        assert!(d_rl > 8.0 * d_plain);
    }

    #[test]
    fn unpatched_population_decays_after_delay() {
        let m = paper_model();
        let n = m.unpatched_series(10.0, 60.0, 0.01);
        assert!((n.value_at(10.0).unwrap() - 1.0).abs() < 1e-9);
        // After 20 ticks of patching at µ=0.1: e^{-2} ≈ 0.135.
        assert!((n.value_at(30.0).unwrap() - (-2.0f64).exp()).abs() < 1e-3);
    }

    #[test]
    fn ever_infected_is_monotone() {
        let m = paper_model();
        let e = m.ever_infected_series(8.0, 100.0, 0.05);
        let mut prev = 0.0;
        for (_, v) in e.iter() {
            assert!(v >= prev - 1e-12);
            prev = v;
        }
    }

    #[test]
    fn post_delay_approx_tracks_numeric_solution() {
        let m = paper_model();
        let d = 10.0;
        let s = m.series(d, 40.0, 0.01);
        // The closed form drops the dN/dt coupling, so allow a loose
        // tolerance; shapes must agree.
        for &t in &[12.0, 15.0, 20.0] {
            let approx = m.post_delay_approx(d, t);
            let exact = s.value_at(t).unwrap();
            assert!(
                (approx - exact).abs() < 0.15,
                "t={t}: approx {approx} vs numeric {exact}"
            );
        }
    }

    #[test]
    fn zero_mu_reduces_to_plain_logistic() {
        let m = DelayedImmunization::new(1000.0, 0.8, 0.0, 1.0).unwrap();
        let s = m.series(5.0, 40.0, 0.01);
        let l = Logistic::new(1000.0, 0.8, 1.0).unwrap().series(0.0, 40.0, 0.01);
        assert!(s.max_abs_difference(&l) < 1e-6);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(DelayedImmunization::new(0.0, 0.8, 0.1, 1.0).is_err());
        assert!(DelayedImmunization::new(1000.0, 0.8, -0.1, 1.0).is_err());
        assert!(paper_model().with_backbone(1.5, 0.0).is_err());
        assert!(paper_model().with_backbone(0.5, -1.0).is_err());
    }

    #[test]
    fn bell_curve_mu_shape() {
        let m = BellCurveImmunization::new(1000.0, 0.8, 1.0, 0.3, 20.0, 5.0).unwrap();
        // Zero before the delay, peaks at t_peak, symmetric falloff.
        assert_eq!(m.mu_at(5.0, 8.0), 0.0);
        assert!((m.mu_at(20.0, 8.0) - 0.3).abs() < 1e-12);
        assert!((m.mu_at(15.0, 8.0) - m.mu_at(25.0, 8.0)).abs() < 1e-12);
        assert!(m.mu_at(40.0, 8.0) < 0.01);
    }

    #[test]
    fn bell_curve_interpolates_between_constant_extremes() {
        // A bell wave peaking at µ=0.2 should cause damage between a
        // constant µ=0.2 (strictly stronger: same peak, sustained) and
        // no immunization at all.
        let delay = 8.0;
        let bell = BellCurveImmunization::new(1000.0, 0.8, 1.0, 0.2, 14.0, 4.0).unwrap();
        let constant = DelayedImmunization::new(1000.0, 0.8, 0.2, 1.0).unwrap();
        let ever_bell = bell.ever_infected_series(delay, 300.0, 0.02).final_value();
        let ever_const = constant.ever_infected_series(delay, 300.0, 0.02).final_value();
        assert!(ever_bell >= ever_const - 1e-6, "{ever_bell} vs {ever_const}");
        assert!(ever_bell < 1.0);
    }

    #[test]
    fn bell_curve_patching_fades_and_the_worm_persists() {
        // The paper's intuition for why the bell shape matters: a
        // patching wave that fades ("immunization may decrease as the
        // infection becomes a rarer occurrence") leaves the remaining
        // unpatched hosts to the worm, whereas sustained constant-rate
        // patching eventually extinguishes it.
        let bell = BellCurveImmunization::new(1000.0, 0.8, 1.0, 0.15, 14.0, 2.0).unwrap();
        let constant = DelayedImmunization::new(1000.0, 0.8, 0.15, 1.0).unwrap();
        let bell_final = bell.series(6.0, 300.0, 0.02).final_value();
        let const_final = constant.series(6.0, 300.0, 0.02).final_value();
        assert!(
            bell_final > 0.2,
            "worm should persist after the wave: {bell_final}"
        );
        assert!(
            const_final < 0.05,
            "sustained patching should extinguish it: {const_final}"
        );
    }

    #[test]
    fn bell_curve_rejects_bad_parameters() {
        assert!(BellCurveImmunization::new(0.0, 0.8, 1.0, 0.2, 10.0, 5.0).is_err());
        assert!(BellCurveImmunization::new(1000.0, 0.8, 1.0, -0.2, 10.0, 5.0).is_err());
        assert!(BellCurveImmunization::new(1000.0, 0.8, 1.0, 0.2, 10.0, 0.0).is_err());
        assert!(BellCurveImmunization::new(1000.0, 0.8, 2000.0, 0.2, 10.0, 5.0).is_err());
    }
}
