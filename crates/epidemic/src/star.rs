//! The star-topology rate-limiting models of Section 4 (Equations 3–5).
//!
//! The paper uses a star graph — one hub connected to all leaves — to
//! contrast two deployment strategies for rate-limiting filters:
//!
//! * **Leaf deployment** ([`LeafRateLimit`], Equation 3): filters at a
//!   fraction `q` of the leaves. Unfiltered infected leaves scan at rate
//!   `β₁`, filtered ones at `β₂ ≪ β₁`, giving a logistic with effective
//!   rate `λ = qβ₂ + (1−q)β₁` — a *linear* slowdown in `q`.
//! * **Hub deployment** ([`HubRateLimit`], Equations 4/5): a per-link cap
//!   `γ` and a hub-node cap `β`. While the combined infected demand `γ·I`
//!   stays below `β`, growth is link-limited and logistic with rate `γ`
//!   (Equation 4); once demand exceeds the hub cap, growth is
//!   hub-saturated, `dI/dt = β(N−I)/N` (Equation 5) — a slowdown
//!   comparable to filtering *every* leaf.

use crate::error::{ensure_fraction, ensure_positive, Error};
use crate::logistic::Logistic;
use crate::ode::{solve_fixed, OdeSystem, Rk4};
use crate::series::TimeSeries;
use serde::{Deserialize, Serialize};

/// Equation 3: rate limiting at a fraction `q` of the leaf nodes of a
/// star (identical math to host-based deployment on the Internet).
///
/// # Example
///
/// ```
/// use dynaquar_epidemic::star::LeafRateLimit;
///
/// # fn main() -> Result<(), dynaquar_epidemic::Error> {
/// let m = LeafRateLimit::new(200.0, 0.3, 0.8, 0.01, 1.0)?;
/// // λ = 0.3*0.01 + 0.7*0.8
/// assert!((m.lambda() - 0.563).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeafRateLimit {
    n: f64,
    q: f64,
    beta1: f64,
    beta2: f64,
    i0: f64,
}

impl LeafRateLimit {
    /// Creates a leaf-deployment model: population `n`, filtered fraction
    /// `q`, unfiltered contact rate `beta1`, filtered contact rate
    /// `beta2`, initial infections `i0`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when any parameter is outside
    /// its domain (`q ∉ [0,1]`, non-positive rates or population,
    /// `i0 >= n`, or `beta2 > beta1`).
    pub fn new(n: f64, q: f64, beta1: f64, beta2: f64, i0: f64) -> Result<Self, Error> {
        ensure_positive("n", n)?;
        ensure_fraction("q", q)?;
        ensure_positive("beta1", beta1)?;
        ensure_positive("beta2", beta2)?;
        ensure_positive("i0", i0)?;
        if beta2 > beta1 {
            return Err(Error::InvalidParameter {
                name: "beta2",
                value: beta2,
                reason: "the filtered rate must not exceed the unfiltered rate",
            });
        }
        if i0 >= n {
            return Err(Error::InvalidParameter {
                name: "i0",
                value: i0,
                reason: "initial infections must be below the population size",
            });
        }
        Ok(LeafRateLimit {
            n,
            q,
            beta1,
            beta2,
            i0,
        })
    }

    /// The effective logistic rate `λ = qβ₂ + (1−q)β₁`.
    pub fn lambda(&self) -> f64 {
        self.q * self.beta2 + (1.0 - self.q) * self.beta1
    }

    /// The paper's approximation `λ ≈ β₁(1 − q)` valid when `β₁ ≫ β₂`.
    pub fn lambda_approx(&self) -> f64 {
        self.beta1 * (1.0 - self.q)
    }

    /// The equivalent closed-form logistic model with rate [`Self::lambda`].
    pub fn to_logistic(self) -> Logistic {
        Logistic::new(self.n, self.lambda(), self.i0).expect("parameters already validated")
    }

    /// Infected fraction over `[0, horizon]` sampled with step `dt`
    /// (closed form).
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0` or `horizon < 0`.
    pub fn series(&self, horizon: f64, dt: f64) -> TimeSeries {
        self.to_logistic().series(0.0, horizon, dt)
    }

    /// Time to reach infection fraction `fraction` (closed form).
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnreachableLevel`] for fractions outside the
    /// model's reachable range.
    pub fn time_to_fraction(&self, fraction: f64) -> Result<f64, Error> {
        self.to_logistic().time_to_fraction(fraction)
    }

    /// The slowdown factor relative to no deployment, `λ(0)/λ(q)`.
    ///
    /// With `β₁ ≫ β₂` this approaches `1/(1−q)` — the paper's "linear
    /// slowdown proportional to the number of filtered nodes".
    pub fn slowdown_factor(&self) -> f64 {
        self.beta1 / self.lambda()
    }
}

/// Equations 4/5: rate limiting at the hub of a star, with per-link rate
/// `γ` and hub-node aggregate rate `β_hub`.
///
/// The growth regime switches when the combined demand of infected leaves
/// (`γ·I`) crosses the hub cap:
///
/// ```text
/// dI/dt = γ I (N − I)/N        while γ I ≤ β_hub   (link-limited)
/// dI/dt = β_hub (N − I)/N      while γ I > β_hub   (hub-saturated)
/// ```
///
/// There is no global closed form, so [`HubRateLimit::series`] integrates
/// the piecewise system with RK4; the closed forms for each regime are
/// exposed for validation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HubRateLimit {
    n: f64,
    gamma: f64,
    beta_hub: f64,
    i0: f64,
}

impl HubRateLimit {
    /// Creates a hub-deployment model.
    ///
    /// `gamma` is the per-link contact rate allowed by the link filters;
    /// `beta_hub` is the aggregate contact rate the hub node forwards.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for non-positive parameters or
    /// `i0 >= n`.
    pub fn new(n: f64, gamma: f64, beta_hub: f64, i0: f64) -> Result<Self, Error> {
        ensure_positive("n", n)?;
        ensure_positive("gamma", gamma)?;
        ensure_positive("beta_hub", beta_hub)?;
        ensure_positive("i0", i0)?;
        if i0 >= n {
            return Err(Error::InvalidParameter {
                name: "i0",
                value: i0,
                reason: "initial infections must be below the population size",
            });
        }
        Ok(HubRateLimit {
            n,
            gamma,
            beta_hub,
            i0,
        })
    }

    /// The per-link rate `γ`.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// The hub aggregate rate `β_hub`.
    pub fn beta_hub(&self) -> f64 {
        self.beta_hub
    }

    /// The infection count at which the regime switches (`I* = β_hub/γ`).
    pub fn regime_switch_infected(&self) -> f64 {
        self.beta_hub / self.gamma
    }

    /// Infected fraction over `[0, horizon]` sampled with step `dt`
    /// (numeric integration of the piecewise system).
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0` or `horizon < 0`.
    pub fn series(&self, horizon: f64, dt: f64) -> TimeSeries {
        let sol = solve_fixed(self, &mut Rk4::new(1), 0.0, &[self.i0], horizon, dt);
        sol.component(0).scaled(1.0 / self.n)
    }

    /// Time to reach `fraction`, measured on a numerically integrated
    /// trajectory with step `dt` up to `horizon`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnreachableLevel`] when the level is not reached
    /// within `horizon`.
    pub fn time_to_fraction(&self, fraction: f64, horizon: f64, dt: f64) -> Result<f64, Error> {
        self.series(horizon, dt)
            .time_to_reach(fraction)
            .ok_or(Error::UnreachableLevel { level: fraction })
    }

    /// The paper's estimate of the time to reach an infection level `α`
    /// under hub saturation: `t ≈ N ln(α) / β_hub` (from the solution of
    /// Equation 5; dominant when the hub cap binds early).
    pub fn time_to_level_saturated_approx(&self, alpha: f64) -> f64 {
        self.n * alpha.ln() / self.beta_hub
    }
}

impl OdeSystem for HubRateLimit {
    fn dim(&self) -> usize {
        1
    }

    fn deriv(&self, _t: f64, y: &[f64], dy: &mut [f64]) {
        let i = y[0].clamp(0.0, self.n);
        let remaining = (self.n - i) / self.n;
        // The achievable aggregate contact rate is the smaller of the
        // leaves' combined link-limited demand and the hub's cap.
        let contact = (self.gamma * i).min(self.beta_hub);
        dy[0] = contact * remaining;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_lambda_matches_paper() {
        // q=0.3, β1=0.8, β2=0.01 -> λ = 0.563
        let m = LeafRateLimit::new(200.0, 0.3, 0.8, 0.01, 1.0).unwrap();
        assert!((m.lambda() - 0.563).abs() < 1e-12);
        assert!((m.lambda_approx() - 0.56).abs() < 1e-12);
    }

    #[test]
    fn leaf_zero_deployment_equals_no_rl() {
        let m = LeafRateLimit::new(200.0, 0.0, 0.8, 0.01, 1.0).unwrap();
        assert_eq!(m.lambda(), 0.8);
        assert!((m.slowdown_factor() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn leaf_full_deployment_equals_beta2() {
        let m = LeafRateLimit::new(200.0, 1.0, 0.8, 0.01, 1.0).unwrap();
        assert!((m.lambda() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn leaf_slowdown_is_linear_in_q() {
        // t(q)/t(0) = λ(0)/λ(q) ≈ 1/(1−q) for β1 >> β2.
        let base = LeafRateLimit::new(200.0, 0.0, 0.8, 1e-6, 1.0).unwrap();
        let half = LeafRateLimit::new(200.0, 0.5, 0.8, 1e-6, 1.0).unwrap();
        let t0 = base.time_to_fraction(0.5).unwrap();
        let t50 = half.time_to_fraction(0.5).unwrap();
        assert!((t50 / t0 - 2.0).abs() < 0.01);
    }

    #[test]
    fn leaf_rejects_beta2_above_beta1() {
        assert!(LeafRateLimit::new(200.0, 0.5, 0.01, 0.8, 1.0).is_err());
    }

    #[test]
    fn hub_regime_switch_point() {
        let m = HubRateLimit::new(200.0, 0.1, 2.0, 1.0).unwrap();
        assert!((m.regime_switch_infected() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn hub_link_limited_phase_matches_logistic() {
        // With a huge hub cap the model never saturates: pure logistic at γ.
        let m = HubRateLimit::new(200.0, 0.5, 1e9, 1.0).unwrap();
        let s = m.series(30.0, 0.01);
        let l = Logistic::new(200.0, 0.5, 1.0).unwrap().series(0.0, 30.0, 0.01);
        assert!(s.max_abs_difference(&l) < 1e-6);
    }

    #[test]
    fn hub_saturated_phase_is_slower_than_logistic() {
        // Tiny hub cap: the curve should lag far behind the unconstrained
        // logistic.
        let free = Logistic::new(200.0, 0.8, 1.0).unwrap().series(0.0, 50.0, 0.05);
        let capped = HubRateLimit::new(200.0, 0.8, 2.0, 1.0)
            .unwrap()
            .series(50.0, 0.05);
        let t_free = free.time_to_reach(0.6).unwrap();
        let t_capped = capped.time_to_reach(0.6);
        if let Some(t) = t_capped {
            assert!(t > 3.0 * t_free);
        } // else: even slower — never reaches 60% within the window
    }

    #[test]
    fn hub_more_effective_than_thirty_percent_leaves() {
        // The paper's Figure 1 comparison: hub RL reaches 60% infection
        // roughly 3x later than 30%-leaf RL.
        let leaf30 = LeafRateLimit::new(200.0, 0.3, 0.8, 0.01, 1.0).unwrap();
        let hub = HubRateLimit::new(200.0, 0.8, 4.0, 1.0).unwrap();
        let t_leaf = leaf30.time_to_fraction(0.6).unwrap();
        let t_hub = hub.time_to_fraction(0.6, 200.0, 0.05).unwrap();
        assert!(
            t_hub / t_leaf > 2.0,
            "expected hub RL much slower: {t_hub} vs {t_leaf}"
        );
    }

    #[test]
    fn hub_monotone_and_bounded() {
        let m = HubRateLimit::new(200.0, 0.8, 2.0, 1.0).unwrap();
        let s = m.series(500.0, 0.1);
        let mut prev = 0.0;
        for (_, v) in s.iter() {
            assert!(v >= prev - 1e-12);
            assert!(v <= 1.0 + 1e-9);
            prev = v;
        }
    }

    #[test]
    fn hub_saturated_time_estimate_positive_above_one() {
        let m = HubRateLimit::new(200.0, 0.8, 2.0, 1.0).unwrap();
        // For a target expressed as a count > 1 the estimate is positive.
        assert!(m.time_to_level_saturated_approx(120.0) > 0.0);
    }

    #[test]
    fn hub_rejects_bad_parameters() {
        assert!(HubRateLimit::new(200.0, -0.1, 1.0, 1.0).is_err());
        assert!(HubRateLimit::new(200.0, 0.1, 0.0, 1.0).is_err());
        assert!(HubRateLimit::new(200.0, 0.1, 1.0, 300.0).is_err());
    }

    #[test]
    fn accessors() {
        let m = HubRateLimit::new(200.0, 0.1, 2.0, 1.0).unwrap();
        assert_eq!(m.gamma(), 0.1);
        assert_eq!(m.beta_hub(), 2.0);
    }
}
