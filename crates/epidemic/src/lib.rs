//! Epidemiological analytical models from *Dynamic Quarantine of Internet
//! Worms* (Wong, Wang, Song, Bielski, Ganger — DSN 2004).
//!
//! This crate implements the mathematical substrate of the paper:
//!
//! * generic fixed-step and adaptive [ODE integrators](ode) (the paper's
//!   analytical curves are solutions of small ODE systems),
//! * the classic [homogeneous logistic model](logistic) of Section 3
//!   (Equation 1 and the time-to-level Equation 2), plus the traditional
//!   constant-rate [SIR/SIS baselines](sir) the paper contrasts against
//!   and an exact [stochastic sampler](stochastic) of the same process,
//! * the [star-graph rate-limiting models](star) of Section 4
//!   (Equations 3, 4, 5: leaf deployment and hub deployment),
//! * the [host-based](host), [edge-router](edge), and
//!   [backbone-router](backbone) deployment models of Section 5
//!   (Equation 6 for backbone deployment),
//! * the [delayed-immunization models](immunization) of Section 6, with and
//!   without backbone rate limiting,
//! * a [`series::TimeSeries`] type shared by every model and by
//!   the packet-level simulator, with time-to-level and slowdown-factor
//!   queries ([`timeto`]).
//!
//! # Example
//!
//! Reproduce the "No RL" curve of the paper's Figure 2 (homogeneous worm
//! with contact rate β = 0.8 on N = 1000 hosts):
//!
//! ```
//! use dynaquar_epidemic::logistic::Logistic;
//!
//! # fn main() -> Result<(), dynaquar_epidemic::Error> {
//! let model = Logistic::new(1000.0, 0.8, 1.0)?;
//! let series = model.series(0.0, 50.0, 0.1);
//! // The infection saturates near 100 %.
//! assert!(series.final_value() > 0.99);
//! // Equation 2: time to reach half the population.
//! let t_half = model.time_to_fraction(0.5)?;
//! assert!((series.time_to_reach(0.5).unwrap() - t_half).abs() < 0.2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod backbone;
pub mod edge;
pub mod error;
pub mod fit;
pub mod host;
pub mod immunization;
pub mod logistic;
pub mod ode;
pub mod series;
pub mod si;
pub mod sir;
pub mod star;
pub mod stochastic;
pub mod timeto;

pub use error::Error;
pub use series::{LabeledSeries, SeriesSet, TimeSeries};
