//! Exact stochastic (Gillespie) simulation of the homogeneous worm
//! models.
//!
//! The paper's deterministic curves are fluid limits; a worm outbreak
//! starting from a single host is a *stochastic* process whose early
//! phase can differ wildly between runs (and can go extinct under
//! removal). This module provides an exact continuous-time Markov-chain
//! sampler so the reproduction can quantify the spread around the fluid
//! curve — and so the packet-level simulator has a second, independent
//! reference point.

use crate::error::{ensure_non_negative, ensure_positive, Error};
use crate::series::TimeSeries;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A homogeneous stochastic SI/SIS worm: infection events occur at rate
/// `β I (N − I)/N`, removal events (if `µ > 0`) at rate `µ I`, with
/// removed hosts leaving the population permanently (SIR-like removal —
/// matching the paper's immunization, not SIS reinfection).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StochasticWorm {
    n: u64,
    beta: f64,
    mu: f64,
    i0: u64,
}

impl StochasticWorm {
    /// Creates the process.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for out-of-domain parameters
    /// (`n == 0`, `beta <= 0`, `mu < 0`, `i0 == 0`, or `i0 >= n`).
    pub fn new(n: u64, beta: f64, mu: f64, i0: u64) -> Result<Self, Error> {
        ensure_positive("n", n as f64)?;
        ensure_positive("beta", beta)?;
        ensure_non_negative("mu", mu)?;
        ensure_positive("i0", i0 as f64)?;
        if i0 >= n {
            return Err(Error::InvalidParameter {
                name: "i0",
                value: i0 as f64,
                reason: "initial infections must be below the population size",
            });
        }
        Ok(StochasticWorm { n, beta, mu, i0 })
    }

    /// Runs one exact trajectory up to `horizon`, returning the infected
    /// *fraction* sampled at every event time (plus the endpoints).
    ///
    /// The trajectory ends early when the infection goes extinct or
    /// everyone is infected/removed.
    pub fn sample_path(&self, horizon: f64, seed: u64) -> TimeSeries {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = self.n as f64;
        let mut t = 0.0;
        let mut infected = self.i0;
        let mut susceptible = self.n - self.i0;
        let mut out = TimeSeries::new();
        out.push(0.0, infected as f64 / n);
        loop {
            let i = infected as f64;
            let s = susceptible as f64;
            let infection_rate = self.beta * i * s / n;
            let removal_rate = self.mu * i;
            let total = infection_rate + removal_rate;
            if total <= 0.0 || infected == 0 {
                break;
            }
            // Exponential waiting time.
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            t += -u.ln() / total;
            if t > horizon {
                break;
            }
            if rng.gen_range(0.0..total) < infection_rate {
                infected += 1;
                susceptible -= 1;
            } else {
                infected -= 1; // removed permanently
            }
            out.push(t, infected as f64 / n);
        }
        // Extend flat to the horizon for alignment.
        if out.last().map(|(lt, _)| lt < horizon).unwrap_or(false) {
            let v = out.final_value();
            out.push(horizon, v);
        }
        out
    }

    /// Mean infected fraction over `runs` trajectories, resampled on a
    /// regular grid of `samples` points.
    ///
    /// # Panics
    ///
    /// Panics if `runs == 0` or `samples < 2`.
    pub fn mean_path(&self, horizon: f64, runs: u64, samples: usize, seed: u64) -> TimeSeries {
        assert!(runs > 0, "need at least one run");
        let paths: Vec<TimeSeries> = (0..runs)
            .map(|k| {
                self.sample_path(horizon, seed ^ k.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                    .resampled(0.0, horizon, samples)
            })
            .collect();
        TimeSeries::mean_of(&paths)
    }

    /// The probability that an outbreak seeded with `i0` hosts goes
    /// extinct without a major epidemic, under the branching-process
    /// approximation: `(µ/β)^{i0}` for `β > µ`, `1` otherwise.
    pub fn extinction_probability_estimate(&self) -> f64 {
        if self.beta <= self.mu {
            1.0
        } else {
            (self.mu / self.beta).powi(self.i0 as i32)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logistic::Logistic;

    #[test]
    fn mean_path_tracks_fluid_limit() {
        // With many initial infections the stochastic mean hugs the
        // deterministic logistic.
        let process = StochasticWorm::new(2000, 0.8, 0.0, 40).unwrap();
        let mean = process.mean_path(20.0, 40, 100, 7);
        let fluid = Logistic::new(2000.0, 0.8, 40.0).unwrap().series(0.0, 20.0, 0.2);
        let diff = fluid.max_abs_difference(&mean);
        assert!(diff < 0.08, "max deviation from fluid limit: {diff}");
    }

    #[test]
    fn single_seed_saturates_without_removal() {
        let process = StochasticWorm::new(500, 0.8, 0.0, 1).unwrap();
        let path = process.sample_path(100.0, 3);
        assert!((path.final_value() - 1.0).abs() < 1e-9);
        // Monotone: no removal events.
        let mut prev = 0.0;
        for (_, v) in path.iter() {
            assert!(v >= prev - 1e-12);
            prev = v;
        }
    }

    #[test]
    fn paths_are_deterministic_per_seed() {
        let process = StochasticWorm::new(300, 0.8, 0.1, 2).unwrap();
        assert_eq!(process.sample_path(50.0, 9), process.sample_path(50.0, 9));
        assert_ne!(process.sample_path(50.0, 9), process.sample_path(50.0, 10));
    }

    #[test]
    fn subcritical_process_goes_extinct() {
        // beta < mu: every trajectory dies out quickly.
        let process = StochasticWorm::new(1000, 0.1, 0.5, 3).unwrap();
        for seed in 0..10 {
            let path = process.sample_path(500.0, seed);
            assert!(path.final_value() < 0.02, "seed {seed}");
        }
        assert_eq!(process.extinction_probability_estimate(), 1.0);
    }

    #[test]
    fn extinction_rate_matches_branching_estimate() {
        // beta = 0.8, mu = 0.4: extinction prob ~ 0.5 for one seed.
        let process = StochasticWorm::new(2000, 0.8, 0.4, 1).unwrap();
        let estimate = process.extinction_probability_estimate();
        assert!((estimate - 0.5).abs() < 1e-12);
        let mut extinct = 0;
        let runs = 200;
        for seed in 0..runs {
            let path = process.sample_path(300.0, seed);
            // A removed-compartment epidemic always burns out eventually;
            // "extinct" means it never took off (tiny peak).
            if path.max_value() < 0.05 {
                extinct += 1;
            }
        }
        let measured = extinct as f64 / runs as f64;
        assert!(
            (measured - estimate).abs() < 0.12,
            "measured extinction {measured} vs estimate {estimate}"
        );
    }

    #[test]
    fn sample_path_ends_at_horizon() {
        let process = StochasticWorm::new(100, 0.8, 0.0, 1).unwrap();
        let path = process.sample_path(30.0, 1);
        assert!((path.last().unwrap().0 - 30.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(StochasticWorm::new(0, 0.8, 0.0, 1).is_err());
        assert!(StochasticWorm::new(10, 0.8, 0.0, 0).is_err());
        assert!(StochasticWorm::new(10, 0.8, 0.0, 10).is_err());
        assert!(StochasticWorm::new(10, -0.8, 0.0, 1).is_err());
    }
}
