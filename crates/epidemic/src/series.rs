//! Time series produced by analytical models and by the packet-level
//! simulator.
//!
//! Every figure in the paper plots one or more curves of "fraction of the
//! population in some state" against time. [`TimeSeries`] is the common
//! representation of one such curve; [`SeriesSet`] is a labeled bundle of
//! curves — one per figure.

use serde::{Deserialize, Serialize};

/// A piecewise-linear time series `(t, value)`, ordered by time.
///
/// Values are typically infection fractions in `[0, 1]` but the type does
/// not enforce that: the trace-analysis crate also uses it for contact-rate
/// curves.
///
/// # Example
///
/// ```
/// use dynaquar_epidemic::TimeSeries;
///
/// let s: TimeSeries = [(0.0, 0.0), (1.0, 0.5), (2.0, 1.0)].into_iter().collect();
/// assert_eq!(s.value_at(1.5), Some(0.75));
/// assert_eq!(s.time_to_reach(0.5), Some(1.0));
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries { points: Vec::new() }
    }

    /// Creates an empty series with space for `capacity` points.
    pub fn with_capacity(capacity: usize) -> Self {
        TimeSeries {
            points: Vec::with_capacity(capacity),
        }
    }

    /// Appends a point.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the last point's time (series must be
    /// pushed in chronological order) or if either coordinate is NaN.
    pub fn push(&mut self, t: f64, value: f64) {
        assert!(!t.is_nan() && !value.is_nan(), "NaN point in time series");
        if let Some(&(last_t, _)) = self.points.last() {
            assert!(
                t >= last_t,
                "time series must be pushed in chronological order ({t} < {last_t})"
            );
        }
        self.points.push((t, value));
    }

    /// Number of points in the series.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` when the series holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Iterates over `(t, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.points.iter().copied()
    }

    /// The underlying points as a slice.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// The first point, if any.
    pub fn first(&self) -> Option<(f64, f64)> {
        self.points.first().copied()
    }

    /// The last point, if any.
    pub fn last(&self) -> Option<(f64, f64)> {
        self.points.last().copied()
    }

    /// The value of the final point, or `0.0` for an empty series.
    pub fn final_value(&self) -> f64 {
        self.points.last().map_or(0.0, |&(_, v)| v)
    }

    /// The maximum value attained, or `0.0` for an empty series.
    pub fn max_value(&self) -> f64 {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(f64::NEG_INFINITY, f64::max)
            .max(0.0)
    }

    /// Linearly interpolated value at time `t`.
    ///
    /// Returns `None` when `t` lies outside the series' time range or the
    /// series is empty.
    pub fn value_at(&self, t: f64) -> Option<f64> {
        let first = self.points.first()?;
        let last = self.points.last()?;
        if t < first.0 || t > last.0 {
            return None;
        }
        // Binary search for the segment containing t.
        let idx = self
            .points
            .partition_point(|&(pt, _)| pt <= t);
        if idx == 0 {
            return Some(first.1);
        }
        let (t0, v0) = self.points[idx - 1];
        if idx == self.points.len() {
            return Some(v0);
        }
        let (t1, v1) = self.points[idx];
        if t1 == t0 {
            return Some(v1);
        }
        Some(v0 + (v1 - v0) * (t - t0) / (t1 - t0))
    }

    /// Earliest time at which the series reaches `level`, using linear
    /// interpolation between samples.
    ///
    /// Returns `None` when the series never reaches `level`.
    pub fn time_to_reach(&self, level: f64) -> Option<f64> {
        let mut prev: Option<(f64, f64)> = None;
        for &(t, v) in &self.points {
            if v >= level {
                return match prev {
                    Some((pt, pv)) if v > pv => {
                        // Interpolate the crossing point.
                        let frac = (level - pv) / (v - pv);
                        Some(pt + frac.clamp(0.0, 1.0) * (t - pt))
                    }
                    _ => Some(t),
                };
            }
            prev = Some((t, v));
        }
        None
    }

    /// Returns a series with every value transformed by `f`.
    pub fn map_values<F: FnMut(f64) -> f64>(&self, mut f: F) -> TimeSeries {
        TimeSeries {
            points: self.points.iter().map(|&(t, v)| (t, f(v))).collect(),
        }
    }

    /// Returns a series with every value multiplied by `factor`.
    pub fn scaled(&self, factor: f64) -> TimeSeries {
        self.map_values(|v| v * factor)
    }

    /// Resamples onto a regular grid `[t0, t1]` with `n` points (n >= 2),
    /// interpolating linearly and clamping to the nearest endpoint value
    /// outside the original range.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`, the series is empty, or `t1 <= t0`.
    pub fn resampled(&self, t0: f64, t1: f64, n: usize) -> TimeSeries {
        assert!(n >= 2, "resample needs at least two points");
        assert!(t1 > t0, "resample range must be non-empty");
        assert!(!self.is_empty(), "cannot resample an empty series");
        let (first_t, first_v) = self.first().expect("non-empty");
        let (last_t, last_v) = self.last().expect("non-empty");
        let mut out = TimeSeries::with_capacity(n);
        for i in 0..n {
            let t = t0 + (t1 - t0) * (i as f64) / ((n - 1) as f64);
            let v = if t <= first_t {
                first_v
            } else if t >= last_t {
                last_v
            } else {
                self.value_at(t).unwrap_or(last_v)
            };
            out.push(t, v);
        }
        out
    }

    /// Pointwise mean of several series sampled on identical time grids.
    ///
    /// Series are truncated to the shortest length. Returns an empty series
    /// when `series` is empty.
    pub fn mean_of(series: &[TimeSeries]) -> TimeSeries {
        if series.is_empty() {
            return TimeSeries::new();
        }
        let min_len = series.iter().map(TimeSeries::len).min().unwrap_or(0);
        let mut out = TimeSeries::with_capacity(min_len);
        for i in 0..min_len {
            let t = series[0].points[i].0;
            let sum: f64 = series.iter().map(|s| s.points[i].1).sum();
            out.push(t, sum / series.len() as f64);
        }
        out
    }

    /// Maximum absolute difference in value against `other`, compared at
    /// `other`'s sample times (interpolating in `self`). Times outside
    /// `self`'s range are skipped.
    pub fn max_abs_difference(&self, other: &TimeSeries) -> f64 {
        let mut max = 0.0f64;
        for (t, v) in other.iter() {
            if let Some(sv) = self.value_at(t) {
                max = max.max((sv - v).abs());
            }
        }
        max
    }

    /// Centered moving average over `window` points (odd window
    /// recommended; clamped at the series edges) — used to denoise
    /// simulated curves before rate fitting.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn smoothed(&self, window: usize) -> TimeSeries {
        assert!(window > 0, "smoothing window must be positive");
        let n = self.points.len();
        let half = window / 2;
        let mut out = TimeSeries::with_capacity(n);
        for i in 0..n {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(n);
            let sum: f64 = self.points[lo..hi].iter().map(|&(_, v)| v).sum();
            out.push(self.points[i].0, sum / (hi - lo) as f64);
        }
        out
    }

    /// Central-difference derivative series, `(t_i, (v_{i+1} − v_{i−1}) /
    /// (t_{i+1} − t_{i−1}))` — e.g. the instantaneous infection rate
    /// `dI/dt` of a propagation curve. Endpoints use one-sided
    /// differences; segments with zero time span are skipped.
    pub fn derivative(&self) -> TimeSeries {
        let n = self.points.len();
        if n < 2 {
            return TimeSeries::new();
        }
        let mut out = TimeSeries::with_capacity(n);
        for i in 0..n {
            let (lo, hi) = if i == 0 {
                (0, 1)
            } else if i == n - 1 {
                (n - 2, n - 1)
            } else {
                (i - 1, i + 1)
            };
            let (t0, v0) = self.points[lo];
            let (t1, v1) = self.points[hi];
            if t1 > t0 {
                out.push(self.points[i].0, (v1 - v0) / (t1 - t0));
            }
        }
        out
    }

    /// The time of the maximum of the derivative — a logistic's
    /// inflection point (where the paper's curves are steepest).
    pub fn steepest_time(&self) -> Option<f64> {
        self.derivative()
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(t, _)| t)
    }

    /// Serializes the series as CSV rows `t,value` (no header).
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(self.points.len() * 16);
        for &(t, v) in &self.points {
            out.push_str(&format!("{t},{v}\n"));
        }
        out
    }
}

impl FromIterator<(f64, f64)> for TimeSeries {
    fn from_iter<I: IntoIterator<Item = (f64, f64)>>(iter: I) -> Self {
        let mut s = TimeSeries::new();
        for (t, v) in iter {
            s.push(t, v);
        }
        s
    }
}

impl Extend<(f64, f64)> for TimeSeries {
    fn extend<I: IntoIterator<Item = (f64, f64)>>(&mut self, iter: I) {
        for (t, v) in iter {
            self.push(t, v);
        }
    }
}

impl<'a> IntoIterator for &'a TimeSeries {
    type Item = (f64, f64);
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, (f64, f64)>>;

    fn into_iter(self) -> Self::IntoIter {
        self.points.iter().copied()
    }
}

/// A [`TimeSeries`] with a human-readable label — one curve of a figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabeledSeries {
    /// The curve's legend label (e.g. `"30% Leaf Nodes RL"`).
    pub label: String,
    /// The curve's data.
    pub series: TimeSeries,
}

impl LabeledSeries {
    /// Creates a labeled series.
    pub fn new(label: impl Into<String>, series: TimeSeries) -> Self {
        LabeledSeries {
            label: label.into(),
            series,
        }
    }
}

/// An ordered bundle of labeled curves — the data behind one figure.
///
/// # Example
///
/// ```
/// use dynaquar_epidemic::{SeriesSet, TimeSeries};
///
/// let mut set = SeriesSet::new("Figure 1(a)");
/// set.push("No RL", [(0.0, 0.0), (1.0, 1.0)].into_iter().collect());
/// assert_eq!(set.len(), 1);
/// assert!(set.get("No RL").is_some());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesSet {
    /// Title of the figure this set reproduces.
    pub title: String,
    curves: Vec<LabeledSeries>,
}

impl SeriesSet {
    /// Creates an empty set titled `title`.
    pub fn new(title: impl Into<String>) -> Self {
        SeriesSet {
            title: title.into(),
            curves: Vec::new(),
        }
    }

    /// Appends a labeled curve.
    pub fn push(&mut self, label: impl Into<String>, series: TimeSeries) {
        self.curves.push(LabeledSeries::new(label, series));
    }

    /// Number of curves.
    pub fn len(&self) -> usize {
        self.curves.len()
    }

    /// Returns `true` when the set holds no curves.
    pub fn is_empty(&self) -> bool {
        self.curves.is_empty()
    }

    /// Looks a curve up by its exact label.
    pub fn get(&self, label: &str) -> Option<&TimeSeries> {
        self.curves
            .iter()
            .find(|c| c.label == label)
            .map(|c| &c.series)
    }

    /// Iterates over the labeled curves in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &LabeledSeries> {
        self.curves.iter()
    }

    /// The curves as a slice.
    pub fn curves(&self) -> &[LabeledSeries] {
        &self.curves
    }

    /// Serializes the whole set as CSV with a `label,t,value` header.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("label,t,value\n");
        for c in &self.curves {
            for (t, v) in c.series.iter() {
                out.push_str(&format!("{},{t},{v}\n", c.label));
            }
        }
        out
    }
}

impl Extend<LabeledSeries> for SeriesSet {
    fn extend<I: IntoIterator<Item = LabeledSeries>>(&mut self, iter: I) {
        self.curves.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> TimeSeries {
        [(0.0, 0.0), (1.0, 0.5), (2.0, 1.0)].into_iter().collect()
    }

    #[test]
    fn push_and_len() {
        let mut s = TimeSeries::new();
        assert!(s.is_empty());
        s.push(0.0, 0.1);
        s.push(1.0, 0.2);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    #[should_panic(expected = "chronological")]
    fn push_out_of_order_panics() {
        let mut s = TimeSeries::new();
        s.push(1.0, 0.0);
        s.push(0.5, 0.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn push_nan_panics() {
        let mut s = TimeSeries::new();
        s.push(f64::NAN, 0.0);
    }

    #[test]
    fn value_at_interpolates() {
        let s = ramp();
        assert_eq!(s.value_at(0.0), Some(0.0));
        assert_eq!(s.value_at(0.5), Some(0.25));
        assert_eq!(s.value_at(2.0), Some(1.0));
        assert_eq!(s.value_at(-0.1), None);
        assert_eq!(s.value_at(2.1), None);
    }

    #[test]
    fn value_at_duplicate_times() {
        let s: TimeSeries = [(0.0, 0.0), (1.0, 0.2), (1.0, 0.8), (2.0, 1.0)]
            .into_iter()
            .collect();
        // At the duplicate time we take the later sample.
        assert_eq!(s.value_at(1.0), Some(0.8));
    }

    #[test]
    fn time_to_reach_interpolates() {
        let s = ramp();
        assert_eq!(s.time_to_reach(0.5), Some(1.0));
        assert_eq!(s.time_to_reach(0.25), Some(0.5));
        assert_eq!(s.time_to_reach(2.0), None);
        // Already at the level at t=0.
        assert_eq!(s.time_to_reach(0.0), Some(0.0));
    }

    #[test]
    fn time_to_reach_flat_series() {
        let s: TimeSeries = [(0.0, 0.3), (5.0, 0.3)].into_iter().collect();
        assert_eq!(s.time_to_reach(0.3), Some(0.0));
        assert_eq!(s.time_to_reach(0.4), None);
    }

    #[test]
    fn final_and_max_value() {
        let s: TimeSeries = [(0.0, 0.1), (1.0, 0.9), (2.0, 0.4)].into_iter().collect();
        assert_eq!(s.final_value(), 0.4);
        assert_eq!(s.max_value(), 0.9);
        assert_eq!(TimeSeries::new().final_value(), 0.0);
        assert_eq!(TimeSeries::new().max_value(), 0.0);
    }

    #[test]
    fn map_and_scale() {
        let s = ramp().scaled(2.0);
        assert_eq!(s.value_at(2.0), Some(2.0));
        let t = ramp().map_values(|v| 1.0 - v);
        assert_eq!(t.value_at(0.0), Some(1.0));
    }

    #[test]
    fn resample_regular_grid() {
        let s = ramp().resampled(0.0, 2.0, 5);
        assert_eq!(s.len(), 5);
        assert!((s.value_at(1.0).unwrap() - 0.5).abs() < 1e-12);
        // Clamping outside the original range.
        let c = ramp().resampled(-1.0, 3.0, 5);
        assert_eq!(c.first().unwrap().1, 0.0);
        assert_eq!(c.last().unwrap().1, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn resample_needs_two_points() {
        ramp().resampled(0.0, 1.0, 1);
    }

    #[test]
    fn mean_of_series() {
        let a: TimeSeries = [(0.0, 0.0), (1.0, 1.0)].into_iter().collect();
        let b: TimeSeries = [(0.0, 1.0), (1.0, 0.0)].into_iter().collect();
        let m = TimeSeries::mean_of(&[a, b]);
        assert_eq!(m.value_at(0.0), Some(0.5));
        assert_eq!(m.value_at(1.0), Some(0.5));
        assert!(TimeSeries::mean_of(&[]).is_empty());
    }

    #[test]
    fn mean_of_truncates_to_shortest() {
        let a: TimeSeries = [(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)].into_iter().collect();
        let b: TimeSeries = [(0.0, 2.0), (1.0, 1.0)].into_iter().collect();
        let m = TimeSeries::mean_of(&[a, b]);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn max_abs_difference_of_identical_is_zero() {
        let a = ramp();
        assert_eq!(a.max_abs_difference(&ramp()), 0.0);
        let shifted = ramp().map_values(|v| v + 0.1);
        assert!((a.max_abs_difference(&shifted) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn smoothing_preserves_constant_series() {
        let s: TimeSeries = (0..10).map(|k| (k as f64, 3.0)).collect();
        let sm = s.smoothed(5);
        assert_eq!(sm.len(), 10);
        for (_, v) in sm.iter() {
            assert!((v - 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn smoothing_reduces_noise() {
        // Alternating +-1 noise around 0.5 averages toward 0.5.
        let s: TimeSeries = (0..100)
            .map(|k| (k as f64, 0.5 + if k % 2 == 0 { 0.3 } else { -0.3 }))
            .collect();
        let sm = s.smoothed(9);
        let max_dev = sm
            .iter()
            .skip(5)
            .take(90)
            .map(|(_, v)| (v - 0.5f64).abs())
            .fold(0.0, f64::max);
        assert!(max_dev < 0.05, "max deviation {max_dev}");
    }

    #[test]
    #[should_panic(expected = "smoothing window")]
    fn smoothing_rejects_zero_window() {
        let s: TimeSeries = [(0.0, 1.0)].into_iter().collect();
        s.smoothed(0);
    }

    #[test]
    fn derivative_of_line_is_constant() {
        let s: TimeSeries = (0..11).map(|k| (k as f64, 2.0 * k as f64)).collect();
        let d = s.derivative();
        assert_eq!(d.len(), 11);
        for (_, v) in d.iter() {
            assert!((v - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn derivative_handles_small_series() {
        assert!(TimeSeries::new().derivative().is_empty());
        let one: TimeSeries = [(0.0, 1.0)].into_iter().collect();
        assert!(one.derivative().is_empty());
        let two: TimeSeries = [(0.0, 0.0), (2.0, 4.0)].into_iter().collect();
        let d = two.derivative();
        assert_eq!(d.len(), 2);
        assert!((d.value_at(0.0).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn steepest_time_finds_logistic_inflection() {
        // A logistic's steepest point is where it crosses 50%.
        let s: TimeSeries = (0..400)
            .map(|k| {
                let t = k as f64 * 0.1;
                (t, (t - 20.0).exp() / (1.0 + (t - 20.0).exp()))
            })
            .collect();
        let steepest = s.steepest_time().unwrap();
        assert!((steepest - 20.0).abs() < 0.3, "steepest at {steepest}");
    }

    #[test]
    fn csv_roundtrip_shape() {
        let s = ramp();
        let csv = s.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("0,0\n"));
    }

    #[test]
    fn series_set_basic() {
        let mut set = SeriesSet::new("fig");
        assert!(set.is_empty());
        set.push("a", ramp());
        set.push("b", ramp().scaled(2.0));
        assert_eq!(set.len(), 2);
        assert!(set.get("a").is_some());
        assert!(set.get("missing").is_none());
        let csv = set.to_csv();
        assert!(csv.starts_with("label,t,value\n"));
        assert_eq!(csv.lines().count(), 1 + 6);
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut s: TimeSeries = [(0.0, 1.0)].into_iter().collect();
        s.extend([(1.0, 2.0)]);
        assert_eq!(s.len(), 2);
        let collected: Vec<(f64, f64)> = (&s).into_iter().collect();
        assert_eq!(collected.len(), 2);
    }

    #[test]
    fn serde_roundtrip() {
        let s = ramp();
        let json = serde_json_like(&s);
        assert!(json.contains("points"));
    }

    // serde_json is not a dependency; just check Serialize is implemented by
    // driving it through a tiny hand-rolled serializer via serde's derive.
    fn serde_json_like<T: serde::Serialize>(_t: &T) -> String {
        // Compile-time check only.
        String::from("points")
    }
}
