//! Error type shared by every analytical model in this crate.

use std::error::Error as StdError;
use std::fmt;

/// Error returned by model constructors and closed-form queries.
///
/// Every public fallible function in this crate returns this type, so
/// callers can use `?` uniformly across models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A model parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter (e.g. `"beta"`).
        name: &'static str,
        /// The value that was supplied.
        value: f64,
        /// Human-readable description of the valid domain.
        reason: &'static str,
    },
    /// A requested infection level can never be reached by the model
    /// (e.g. asking for fraction 1.2, or a level above the model's
    /// saturation point).
    UnreachableLevel {
        /// The requested infection fraction.
        level: f64,
    },
    /// An adaptive integrator failed to meet its error tolerance even at
    /// the minimum step size.
    StepSizeUnderflow {
        /// Simulation time at which the failure occurred.
        t: f64,
        /// The step size that was rejected.
        step: f64,
    },
    /// An integrator produced a NaN or infinite state component — the
    /// system diverged or its right-hand side is ill-defined there.
    NonFiniteState {
        /// Simulation time at which the state stopped being finite.
        t: f64,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidParameter {
                name,
                value,
                reason,
            } => {
                write!(f, "invalid parameter {name} = {value}: {reason}")
            }
            Error::UnreachableLevel { level } => {
                write!(f, "infection level {level} is never reached by this model")
            }
            Error::StepSizeUnderflow { t, step } => {
                write!(
                    f,
                    "adaptive step size underflow at t = {t} (step = {step})"
                )
            }
            Error::NonFiniteState { t } => {
                write!(f, "non-finite state (NaN or infinity) at t = {t}")
            }
        }
    }
}

impl StdError for Error {}

/// Validates that `value` is strictly positive.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] when `value <= 0` or is not finite.
pub(crate) fn ensure_positive(name: &'static str, value: f64) -> Result<(), Error> {
    if !value.is_finite() || value <= 0.0 {
        return Err(Error::InvalidParameter {
            name,
            value,
            reason: "must be a finite value > 0",
        });
    }
    Ok(())
}

/// Validates that `value` lies in the closed interval `[0, 1]`.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] when `value` is outside `[0, 1]` or
/// is not finite.
pub(crate) fn ensure_fraction(name: &'static str, value: f64) -> Result<(), Error> {
    if !value.is_finite() || !(0.0..=1.0).contains(&value) {
        return Err(Error::InvalidParameter {
            name,
            value,
            reason: "must be a finite value in [0, 1]",
        });
    }
    Ok(())
}

/// Validates that `value` is finite and non-negative.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] when `value < 0` or is not finite.
pub(crate) fn ensure_non_negative(name: &'static str, value: f64) -> Result<(), Error> {
    if !value.is_finite() || value < 0.0 {
        return Err(Error::InvalidParameter {
            name,
            value,
            reason: "must be a finite value >= 0",
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_parameter_name() {
        let err = Error::InvalidParameter {
            name: "beta",
            value: -1.0,
            reason: "must be a finite value > 0",
        };
        let msg = err.to_string();
        assert!(msg.contains("beta"));
        assert!(msg.contains("-1"));
    }

    #[test]
    fn display_unreachable_level() {
        let err = Error::UnreachableLevel { level: 1.5 };
        assert!(err.to_string().contains("1.5"));
    }

    #[test]
    fn display_step_underflow() {
        let err = Error::StepSizeUnderflow { t: 3.0, step: 1e-14 };
        assert!(err.to_string().contains("underflow"));
    }

    #[test]
    fn display_non_finite_state() {
        let err = Error::NonFiniteState { t: 2.5 };
        assert!(err.to_string().contains("non-finite"));
        assert!(err.to_string().contains("2.5"));
    }

    #[test]
    fn ensure_positive_accepts_positive() {
        assert!(ensure_positive("x", 0.5).is_ok());
    }

    #[test]
    fn ensure_positive_rejects_zero_negative_nan() {
        assert!(ensure_positive("x", 0.0).is_err());
        assert!(ensure_positive("x", -3.0).is_err());
        assert!(ensure_positive("x", f64::NAN).is_err());
        assert!(ensure_positive("x", f64::INFINITY).is_err());
    }

    #[test]
    fn ensure_fraction_bounds() {
        assert!(ensure_fraction("q", 0.0).is_ok());
        assert!(ensure_fraction("q", 1.0).is_ok());
        assert!(ensure_fraction("q", 0.3).is_ok());
        assert!(ensure_fraction("q", -0.01).is_err());
        assert!(ensure_fraction("q", 1.01).is_err());
        assert!(ensure_fraction("q", f64::NAN).is_err());
    }

    #[test]
    fn ensure_non_negative_bounds() {
        assert!(ensure_non_negative("r", 0.0).is_ok());
        assert!(ensure_non_negative("r", 7.0).is_ok());
        assert!(ensure_non_negative("r", -0.1).is_err());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
