//! The homogeneous logistic worm model of Section 3 (Equations 1 and 2).
//!
//! A homogeneous epidemiological model assumes every individual has equal
//! contact with every other. The number of infected hosts `I(t)` follows
//!
//! ```text
//! dI/dt = β I (N − I) / N            (Equation 1)
//! ```
//!
//! whose solution is the logistic curve `I/N = e^{βt} / (c + e^{βt})` with
//! `c = N/I₀ − 1` fixed by the initial infection level. The time to reach
//! an infection fraction `a` follows in closed form (the paper's
//! Equation 2 is the low-initial-infection approximation `t ≈ ln α / β`).

use crate::error::{ensure_positive, Error};
use crate::series::TimeSeries;
use serde::{Deserialize, Serialize};

/// Closed-form homogeneous logistic infection model (Equation 1).
///
/// # Example
///
/// ```
/// use dynaquar_epidemic::logistic::Logistic;
///
/// # fn main() -> Result<(), dynaquar_epidemic::Error> {
/// // Code-Red-like: 1000 hosts, contact rate 0.8, one initial infection.
/// let m = Logistic::new(1000.0, 0.8, 1.0)?;
/// assert!(m.fraction_at(0.0) < 0.01);
/// assert!(m.fraction_at(40.0) > 0.99);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Logistic {
    n: f64,
    beta: f64,
    i0: f64,
}

impl Logistic {
    /// Creates a logistic model for a population of `n` hosts with contact
    /// rate `beta` and `i0` initially infected hosts.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when `n <= 0`, `beta <= 0`,
    /// `i0 <= 0`, or `i0 >= n`.
    pub fn new(n: f64, beta: f64, i0: f64) -> Result<Self, Error> {
        ensure_positive("n", n)?;
        ensure_positive("beta", beta)?;
        ensure_positive("i0", i0)?;
        if i0 >= n {
            return Err(Error::InvalidParameter {
                name: "i0",
                value: i0,
                reason: "initial infections must be below the population size",
            });
        }
        Ok(Logistic { n, beta, i0 })
    }

    /// The population size `N`.
    pub fn population(&self) -> f64 {
        self.n
    }

    /// The contact rate `β`.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The initial number of infected hosts `I₀`.
    pub fn initial_infected(&self) -> f64 {
        self.i0
    }

    /// The integration constant `c = N/I₀ − 1` of the closed-form solution.
    ///
    /// For a low initial infection level `c → N − 1`, as noted in the
    /// paper.
    pub fn c(&self) -> f64 {
        self.n / self.i0 - 1.0
    }

    /// Infected fraction `I(t)/N` at time `t` (closed form).
    pub fn fraction_at(&self, t: f64) -> f64 {
        let e = (self.beta * t).exp();
        if e.is_infinite() {
            return 1.0;
        }
        e / (self.c() + e)
    }

    /// Number of infected hosts `I(t)` at time `t`.
    pub fn infected_at(&self, t: f64) -> f64 {
        self.n * self.fraction_at(t)
    }

    /// Exact time at which the infected fraction reaches `fraction`
    /// (inverse of [`Logistic::fraction_at`]).
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnreachableLevel`] when `fraction` is not in
    /// `(0, 1)` or lies below the initial infection level.
    pub fn time_to_fraction(&self, fraction: f64) -> Result<f64, Error> {
        if !(0.0..1.0).contains(&fraction) || fraction <= 0.0 {
            return Err(Error::UnreachableLevel { level: fraction });
        }
        let f0 = self.i0 / self.n;
        if fraction < f0 {
            return Err(Error::UnreachableLevel { level: fraction });
        }
        // a = e / (c + e)  =>  e^{βt} = a c / (1 − a)
        Ok(((fraction * self.c()) / (1.0 - fraction)).ln() / self.beta)
    }

    /// The paper's Equation 2 approximation `t ≈ ln(αc) / β` for the time
    /// to reach a *count* of `alpha` infected hosts while the infection is
    /// still in its exponential phase.
    pub fn time_to_level_approx(&self, alpha: f64) -> f64 {
        (alpha * self.c() / self.n).ln() / self.beta
    }

    /// Samples `I(t)/N` on the regular grid `[t0, t1]` with step `dt`.
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0` or `t1 < t0`.
    pub fn series(&self, t0: f64, t1: f64, dt: f64) -> TimeSeries {
        assert!(dt > 0.0, "dt must be positive");
        assert!(t1 >= t0, "time range must be forward");
        let steps = ((t1 - t0) / dt).round() as usize;
        let mut out = TimeSeries::with_capacity(steps + 1);
        for k in 0..=steps {
            let t = t0 + k as f64 * dt;
            out.push(t, self.fraction_at(t));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Logistic::new(0.0, 0.8, 1.0).is_err());
        assert!(Logistic::new(100.0, 0.0, 1.0).is_err());
        assert!(Logistic::new(100.0, 0.8, 0.0).is_err());
        assert!(Logistic::new(100.0, 0.8, 100.0).is_err());
        assert!(Logistic::new(100.0, 0.8, 150.0).is_err());
    }

    #[test]
    fn initial_fraction_matches_i0() {
        let m = Logistic::new(200.0, 0.8, 2.0).unwrap();
        assert!((m.fraction_at(0.0) - 0.01).abs() < 1e-12);
        assert!((m.infected_at(0.0) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn saturates_at_one() {
        let m = Logistic::new(1000.0, 0.8, 1.0).unwrap();
        assert!(m.fraction_at(1e6) <= 1.0);
        assert!((m.fraction_at(1e6) - 1.0).abs() < 1e-9);
        // Extreme time must not produce NaN via inf/inf.
        assert_eq!(m.fraction_at(1e9), 1.0);
    }

    #[test]
    fn monotonically_increasing() {
        let m = Logistic::new(1000.0, 0.5, 1.0).unwrap();
        let mut prev = 0.0;
        for k in 0..200 {
            let f = m.fraction_at(k as f64 * 0.5);
            assert!(f >= prev);
            prev = f;
        }
    }

    #[test]
    fn time_to_fraction_inverts_fraction_at() {
        let m = Logistic::new(1000.0, 0.8, 1.0).unwrap();
        for &a in &[0.01, 0.1, 0.5, 0.9, 0.99] {
            let t = m.time_to_fraction(a).unwrap();
            assert!((m.fraction_at(t) - a).abs() < 1e-10, "a = {a}");
        }
    }

    #[test]
    fn time_to_fraction_rejects_unreachable() {
        let m = Logistic::new(1000.0, 0.8, 10.0).unwrap();
        assert!(m.time_to_fraction(0.0).is_err());
        assert!(m.time_to_fraction(1.0).is_err());
        assert!(m.time_to_fraction(1.5).is_err());
        // Below the initial level (1% infected initially).
        assert!(m.time_to_fraction(0.005).is_err());
    }

    #[test]
    fn doubling_beta_halves_time_to_level() {
        // Equation 2: t ≈ ln α / β, so t is inversely proportional to β.
        let slow = Logistic::new(1000.0, 0.4, 1.0).unwrap();
        let fast = Logistic::new(1000.0, 0.8, 1.0).unwrap();
        let ts = slow.time_to_fraction(0.5).unwrap();
        let tf = fast.time_to_fraction(0.5).unwrap();
        assert!((ts / tf - 2.0).abs() < 1e-9);
    }

    #[test]
    fn c_approaches_n_minus_one_for_single_seed() {
        let m = Logistic::new(1000.0, 0.8, 1.0).unwrap();
        assert!((m.c() - 999.0).abs() < 1e-9);
    }

    #[test]
    fn series_shape() {
        let m = Logistic::new(200.0, 0.8, 1.0).unwrap();
        let s = m.series(0.0, 50.0, 0.5);
        assert_eq!(s.len(), 101);
        assert!(s.final_value() > 0.99);
        assert_eq!(s.first().unwrap().0, 0.0);
        assert!((s.last().unwrap().0 - 50.0).abs() < 1e-9);
    }

    #[test]
    fn series_matches_closed_form_time_to_half() {
        let m = Logistic::new(1000.0, 0.8, 1.0).unwrap();
        let s = m.series(0.0, 50.0, 0.01);
        let t_series = s.time_to_reach(0.5).unwrap();
        let t_exact = m.time_to_fraction(0.5).unwrap();
        assert!((t_series - t_exact).abs() < 0.02);
    }

    #[test]
    fn accessors() {
        let m = Logistic::new(100.0, 0.3, 2.0).unwrap();
        assert_eq!(m.population(), 100.0);
        assert_eq!(m.beta(), 0.3);
        assert_eq!(m.initial_infected(), 2.0);
    }
}
