//! Backbone-router rate limiting (Section 5.3, Equation 6).
//!
//! When rate-limiting filters cover a fraction `α` of all IP-to-IP paths,
//! worm traffic on covered paths is throttled to a small residual rate and
//! the infection follows
//!
//! ```text
//! dI/dt = I β (1 − α)(N − I)/N + δ (N − I)/N,   δ = min(I β α, r N / 2³²)
//! ```
//!
//! where `β` is the per-host contact rate and `r` is the average allowed
//! rate of the filtered routers. When `r` is small the first term
//! dominates and the infection is approximately logistic with rate
//! `λ = β(1 − α)`.

use crate::error::{ensure_fraction, ensure_non_negative, ensure_positive, Error};
use crate::logistic::Logistic;
use crate::ode::{solve_fixed, OdeSystem, Rk4};
use crate::series::TimeSeries;
use serde::{Deserialize, Serialize};

/// Address-space size used in the paper's `δ = min(Iβα, rN/2³²)` residual
/// term.
pub const ADDRESS_SPACE: f64 = 4294967296.0; // 2^32

/// Equation 6: backbone-router rate limiting covering a fraction `alpha`
/// of IP-to-IP paths.
///
/// # Example
///
/// ```
/// use dynaquar_epidemic::backbone::BackboneRateLimit;
///
/// # fn main() -> Result<(), dynaquar_epidemic::Error> {
/// // Cover 90% of paths.
/// let m = BackboneRateLimit::new(1000.0, 0.8, 0.9, 10.0, 1.0)?;
/// // λ = β(1−α) = 0.08: a 10x slowdown versus no rate limiting.
/// assert!((m.lambda_approx() - 0.08).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BackboneRateLimit {
    n: f64,
    beta: f64,
    alpha: f64,
    r: f64,
    i0: f64,
}

impl BackboneRateLimit {
    /// Creates the model: population `n`, per-host contact rate `beta`,
    /// covered path fraction `alpha`, average allowed router rate `r`
    /// (contacts per time unit; may be `0` for perfect filtering),
    /// initial infections `i0`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for out-of-domain parameters.
    pub fn new(n: f64, beta: f64, alpha: f64, r: f64, i0: f64) -> Result<Self, Error> {
        ensure_positive("n", n)?;
        ensure_positive("beta", beta)?;
        ensure_fraction("alpha", alpha)?;
        ensure_non_negative("r", r)?;
        ensure_positive("i0", i0)?;
        if i0 >= n {
            return Err(Error::InvalidParameter {
                name: "i0",
                value: i0,
                reason: "initial infections must be below the population size",
            });
        }
        Ok(BackboneRateLimit {
            n,
            beta,
            alpha,
            r,
            i0,
        })
    }

    /// The covered path fraction `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The residual throttled rate `δ(I) = min(Iβα, rN/2³²)`.
    pub fn delta(&self, infected: f64) -> f64 {
        (infected * self.beta * self.alpha).min(self.r * self.n / ADDRESS_SPACE)
    }

    /// The small-`r` approximation rate `λ = β(1 − α)`.
    pub fn lambda_approx(&self) -> f64 {
        self.beta * (1.0 - self.alpha)
    }

    /// The equivalent approximate logistic model (valid for small `r`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when `α = 1` (the approximate
    /// rate degenerates to zero and no logistic model exists).
    pub fn to_logistic_approx(&self) -> Result<Logistic, Error> {
        Logistic::new(self.n, self.lambda_approx(), self.i0)
    }

    /// Infected fraction over `[0, horizon]` sampled with step `dt`
    /// (numeric integration of Equation 6).
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0` or `horizon < 0`.
    pub fn series(&self, horizon: f64, dt: f64) -> TimeSeries {
        let sol = solve_fixed(self, &mut Rk4::new(1), 0.0, &[self.i0], horizon, dt);
        sol.component(0).scaled(1.0 / self.n)
    }

    /// Time to reach infection fraction `fraction` on the numerically
    /// integrated trajectory.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnreachableLevel`] when `fraction` is not reached
    /// within `horizon`.
    pub fn time_to_fraction(&self, fraction: f64, horizon: f64, dt: f64) -> Result<f64, Error> {
        self.series(horizon, dt)
            .time_to_reach(fraction)
            .ok_or(Error::UnreachableLevel { level: fraction })
    }
}

impl OdeSystem for BackboneRateLimit {
    fn dim(&self) -> usize {
        1
    }

    fn deriv(&self, _t: f64, y: &[f64], dy: &mut [f64]) {
        let i = y[0].clamp(0.0, self.n);
        let remaining = (self.n - i) / self.n;
        dy[0] = i * self.beta * (1.0 - self.alpha) * remaining + self.delta(i) * remaining;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_coverage_matches_logistic() {
        let m = BackboneRateLimit::new(1000.0, 0.8, 0.0, 0.0, 1.0).unwrap();
        let s = m.series(40.0, 0.01);
        let l = Logistic::new(1000.0, 0.8, 1.0).unwrap().series(0.0, 40.0, 0.01);
        assert!(s.max_abs_difference(&l) < 1e-6);
    }

    #[test]
    fn small_r_matches_lambda_approximation() {
        let m = BackboneRateLimit::new(1000.0, 0.8, 0.9, 1e-6, 1.0).unwrap();
        let s = m.series(500.0, 0.1);
        let approx = m.to_logistic_approx().unwrap().series(0.0, 500.0, 0.1);
        assert!(s.max_abs_difference(&approx) < 1e-3);
    }

    #[test]
    fn delta_saturates_at_router_budget() {
        let m = BackboneRateLimit::new(1000.0, 0.8, 0.5, 1e7, 1.0).unwrap();
        // Small I: demand-limited.
        assert!((m.delta(1.0) - 0.4).abs() < 1e-12);
        // Huge I: budget-limited at rN/2^32.
        let budget = 1e7 * 1000.0 / ADDRESS_SPACE;
        assert!((m.delta(1e9) - budget).abs() < 1e-9);
    }

    #[test]
    fn higher_coverage_slows_infection() {
        let t_at = |alpha: f64| {
            BackboneRateLimit::new(1000.0, 0.8, alpha, 0.0, 1.0)
                .unwrap()
                .time_to_fraction(0.5, 5000.0, 0.5)
                .unwrap()
        };
        let t0 = t_at(0.0);
        let t50 = t_at(0.5);
        let t90 = t_at(0.9);
        assert!(t50 > 1.9 * t0);
        assert!(t90 > 9.0 * t0);
    }

    #[test]
    fn backbone_five_times_slower_figure4_shape() {
        // Figure 4 criterion: backbone RL is ~5x slower to 50% infection
        // than a 5%-host deployment. A 5%-host deployment has
        // λ = 0.95·β + 0.05·β2 ≈ β, so compare with α ≈ 0.8.
        let none = BackboneRateLimit::new(1000.0, 0.8, 0.0, 0.0, 1.0).unwrap();
        let backbone = BackboneRateLimit::new(1000.0, 0.8, 0.8, 0.0, 1.0).unwrap();
        let t_none = none.time_to_fraction(0.5, 5000.0, 0.5).unwrap();
        let t_bb = backbone.time_to_fraction(0.5, 5000.0, 0.5).unwrap();
        assert!(t_bb / t_none > 4.0, "slowdown = {}", t_bb / t_none);
    }

    #[test]
    fn full_coverage_with_zero_residual_never_spreads() {
        let m = BackboneRateLimit::new(1000.0, 0.8, 1.0, 0.0, 1.0).unwrap();
        let s = m.series(1000.0, 1.0);
        assert!(s.final_value() < 0.0011); // stays at I0/N
        assert!(m.to_logistic_approx().is_err());
    }

    #[test]
    fn full_coverage_with_residual_spreads_slowly() {
        // r > 0 keeps a trickle going even at full coverage.
        let m = BackboneRateLimit::new(1000.0, 0.8, 1.0, 1e8, 1.0).unwrap();
        let s = m.series(2000.0, 1.0);
        assert!(s.final_value() > 0.0011);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(BackboneRateLimit::new(1000.0, 0.8, 1.2, 0.0, 1.0).is_err());
        assert!(BackboneRateLimit::new(1000.0, 0.8, 0.5, -1.0, 1.0).is_err());
        assert!(BackboneRateLimit::new(1000.0, -0.8, 0.5, 0.0, 1.0).is_err());
    }
}
