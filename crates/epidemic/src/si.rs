//! The homogeneous SI model as an [`OdeSystem`], for cross-validating the
//! closed forms and as a base for the piecewise models.
//!
//! [`HomogeneousSi`] integrates Equation 1 numerically; its solution must
//! (and, in tests, does) match [`crate::logistic::Logistic`] to integrator
//! accuracy. Models with regime switches (hub deployment, backbone `δ`
//! term, delayed immunization) extend this numeric path because they have
//! no global closed form.

use crate::error::{ensure_positive, Error};
use crate::logistic::Logistic;
use crate::ode::{solve_fixed, OdeSystem, Rk4};
use crate::series::TimeSeries;
use serde::{Deserialize, Serialize};

/// Homogeneous susceptible–infected model, `dI/dt = βI(N−I)/N`, as a
/// numerically integrable system.
///
/// # Example
///
/// ```
/// use dynaquar_epidemic::si::HomogeneousSi;
///
/// # fn main() -> Result<(), dynaquar_epidemic::Error> {
/// let m = HomogeneousSi::new(1000.0, 0.8, 1.0)?;
/// let s = m.series(50.0, 0.05);
/// assert!(s.final_value() > 0.99);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HomogeneousSi {
    n: f64,
    beta: f64,
    i0: f64,
}

impl HomogeneousSi {
    /// Creates the model.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] under the same conditions as
    /// [`Logistic::new`].
    pub fn new(n: f64, beta: f64, i0: f64) -> Result<Self, Error> {
        ensure_positive("n", n)?;
        ensure_positive("beta", beta)?;
        ensure_positive("i0", i0)?;
        if i0 >= n {
            return Err(Error::InvalidParameter {
                name: "i0",
                value: i0,
                reason: "initial infections must be below the population size",
            });
        }
        Ok(HomogeneousSi { n, beta, i0 })
    }

    /// The equivalent closed-form model.
    pub fn to_logistic(self) -> Logistic {
        Logistic::new(self.n, self.beta, self.i0).expect("parameters already validated")
    }

    /// Integrates `I(t)/N` from `t = 0` to `horizon` with step `dt`.
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0` or `horizon < 0`.
    pub fn series(&self, horizon: f64, dt: f64) -> TimeSeries {
        let sol = solve_fixed(self, &mut Rk4::new(1), 0.0, &[self.i0], horizon, dt);
        sol.component(0).scaled(1.0 / self.n)
    }
}

impl OdeSystem for HomogeneousSi {
    fn dim(&self) -> usize {
        1
    }

    fn deriv(&self, _t: f64, y: &[f64], dy: &mut [f64]) {
        let i = y[0].clamp(0.0, self.n);
        dy[0] = self.beta * i * (self.n - i) / self.n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_matches_closed_form() {
        let m = HomogeneousSi::new(1000.0, 0.8, 1.0).unwrap();
        let numeric = m.series(40.0, 0.01);
        let closed = m.to_logistic().series(0.0, 40.0, 0.01);
        assert!(numeric.max_abs_difference(&closed) < 1e-6);
    }

    #[test]
    fn derivative_zero_at_saturation() {
        let m = HomogeneousSi::new(100.0, 0.5, 1.0).unwrap();
        let mut dy = [0.0];
        m.deriv(0.0, &[100.0], &mut dy);
        assert_eq!(dy[0], 0.0);
    }

    #[test]
    fn derivative_positive_midway() {
        let m = HomogeneousSi::new(100.0, 0.5, 1.0).unwrap();
        let mut dy = [0.0];
        m.deriv(0.0, &[50.0], &mut dy);
        assert!((dy[0] - 0.5 * 50.0 * 0.5).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(HomogeneousSi::new(-1.0, 0.8, 1.0).is_err());
        assert!(HomogeneousSi::new(10.0, 0.8, 11.0).is_err());
    }

    #[test]
    fn state_clamped_against_overshoot() {
        // Even if an integrator overshoots N slightly the derivative must
        // not go negative-feedback-unstable.
        let m = HomogeneousSi::new(100.0, 0.5, 1.0).unwrap();
        let mut dy = [0.0];
        m.deriv(0.0, &[100.5], &mut dy);
        assert_eq!(dy[0], 0.0);
    }
}
