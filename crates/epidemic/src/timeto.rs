//! Time-to-level and slowdown-factor utilities.
//!
//! Every comparison in the paper boils down to "how much later does the
//! infection reach level α under strategy X than under strategy Y". These
//! helpers compute that uniformly for analytic and simulated
//! [`TimeSeries`] curves.

use crate::error::Error;
use crate::series::TimeSeries;
use serde::{Deserialize, Serialize};

/// The slowdown of `limited` relative to `baseline` at infection level
/// `level`: `t_limited(level) / t_baseline(level)`.
///
/// # Errors
///
/// Returns [`Error::UnreachableLevel`] when either curve never reaches
/// `level` (a curve that never gets there is *infinitely* slowed — callers
/// that want to treat that as success should check
/// [`TimeSeries::time_to_reach`] directly).
pub fn slowdown_factor(
    baseline: &TimeSeries,
    limited: &TimeSeries,
    level: f64,
) -> Result<f64, Error> {
    let tb = baseline
        .time_to_reach(level)
        .ok_or(Error::UnreachableLevel { level })?;
    let tl = limited
        .time_to_reach(level)
        .ok_or(Error::UnreachableLevel { level })?;
    if tb <= 0.0 {
        return Err(Error::UnreachableLevel { level });
    }
    Ok(tl / tb)
}

/// A compact summary of one propagation curve, as reported in
/// EXPERIMENTS.md tables.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CurveSummary {
    /// Time to 10 % infection (`None` if never reached).
    pub t10: Option<f64>,
    /// Time to 50 % infection.
    pub t50: Option<f64>,
    /// Time to 90 % infection.
    pub t90: Option<f64>,
    /// Final value of the curve.
    pub final_value: f64,
    /// Maximum value of the curve.
    pub max_value: f64,
}

impl CurveSummary {
    /// Summarizes a curve.
    pub fn of(series: &TimeSeries) -> Self {
        CurveSummary {
            t10: series.time_to_reach(0.1),
            t50: series.time_to_reach(0.5),
            t90: series.time_to_reach(0.9),
            final_value: series.final_value(),
            max_value: series.max_value(),
        }
    }
}

impl std::fmt::Display for CurveSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fn opt(v: Option<f64>) -> String {
            v.map_or_else(|| "-".to_string(), |t| format!("{t:.2}"))
        }
        write!(
            f,
            "t10={} t50={} t90={} final={:.3} max={:.3}",
            opt(self.t10),
            opt(self.t50),
            opt(self.t90),
            self.final_value,
            self.max_value
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logistic::Logistic;

    #[test]
    fn slowdown_of_half_rate_is_two() {
        let fast = Logistic::new(1000.0, 0.8, 1.0).unwrap().series(0.0, 100.0, 0.01);
        let slow = Logistic::new(1000.0, 0.4, 1.0).unwrap().series(0.0, 100.0, 0.01);
        let f = slowdown_factor(&fast, &slow, 0.5).unwrap();
        assert!((f - 2.0).abs() < 0.01);
    }

    #[test]
    fn slowdown_errors_when_unreached() {
        let fast = Logistic::new(1000.0, 0.8, 1.0).unwrap().series(0.0, 100.0, 0.1);
        let flat: TimeSeries = [(0.0, 0.0), (100.0, 0.01)].into_iter().collect();
        assert!(slowdown_factor(&fast, &flat, 0.5).is_err());
        assert!(slowdown_factor(&flat, &fast, 0.5).is_err());
    }

    #[test]
    fn summary_fields() {
        let s = Logistic::new(1000.0, 0.8, 1.0).unwrap().series(0.0, 60.0, 0.01);
        let sum = CurveSummary::of(&s);
        assert!(sum.t10.unwrap() < sum.t50.unwrap());
        assert!(sum.t50.unwrap() < sum.t90.unwrap());
        assert!(sum.final_value > 0.99);
        let rendered = sum.to_string();
        assert!(rendered.contains("t50="));
    }

    #[test]
    fn summary_of_flat_curve_uses_dashes() {
        let flat: TimeSeries = [(0.0, 0.0), (10.0, 0.05)].into_iter().collect();
        let sum = CurveSummary::of(&flat);
        assert!(sum.t50.is_none());
        assert!(sum.to_string().contains("t50=-"));
    }
}
