//! Fitting logistic parameters to observed propagation curves.
//!
//! The paper's analysis lives in terms of effective logistic rates
//! (`λ = qβ₂ + (1−q)β₁`, `λ = β(1−α)`, …). To compare a *simulated*
//! curve against those predictions quantitatively, this module extracts
//! the effective rate from any observed infected-fraction series by
//! least-squares regression on the logit transform: for a logistic
//! curve, `ln(f / (1 − f)) = λ t − ln c` is exactly linear in `t`.

use crate::error::Error;
use crate::series::TimeSeries;
use serde::{Deserialize, Serialize};

/// The result of a logistic fit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogisticFit {
    /// The fitted exponential growth rate λ.
    pub rate: f64,
    /// The fitted integration constant `c` (`f(t) = e^{λt}/(c + e^{λt})`).
    pub c: f64,
    /// Root-mean-square residual in logit space (small = genuinely
    /// logistic growth; large = the curve has another shape, e.g. a
    /// hub-saturated linear regime).
    pub logit_rmse: f64,
    /// Number of usable sample points.
    pub points: usize,
}

impl LogisticFit {
    /// The fitted curve's value at time `t`.
    pub fn value_at(&self, t: f64) -> f64 {
        let e = (self.rate * t).exp();
        if e.is_infinite() {
            1.0
        } else {
            e / (self.c + e)
        }
    }
}

/// Fits a logistic curve to `series`, using only samples strictly inside
/// `(lo, hi)` (logits diverge at 0 and 1; the defaults used by
/// [`fit_logistic`] are 2 % and 98 %).
///
/// # Errors
///
/// Returns [`Error::UnreachableLevel`] when fewer than three usable
/// points remain.
pub fn fit_logistic_in(series: &TimeSeries, lo: f64, hi: f64) -> Result<LogisticFit, Error> {
    let points: Vec<(f64, f64)> = series
        .iter()
        .filter(|&(_, f)| f > lo && f < hi)
        .map(|(t, f)| (t, (f / (1.0 - f)).ln()))
        .collect();
    if points.len() < 3 {
        return Err(Error::UnreachableLevel { level: lo });
    }
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return Err(Error::UnreachableLevel { level: lo });
    }
    let rate = (n * sxy - sx * sy) / denom;
    let intercept = (sy - rate * sx) / n;
    let c = (-intercept).exp();
    let rmse = (points
        .iter()
        .map(|&(t, y)| {
            let pred = rate * t + intercept;
            (y - pred) * (y - pred)
        })
        .sum::<f64>()
        / n)
        .sqrt();
    Ok(LogisticFit {
        rate,
        c,
        logit_rmse: rmse,
        points: points.len(),
    })
}

/// [`fit_logistic_in`] with the default usable band `(0.02, 0.98)`.
///
/// # Errors
///
/// Same conditions as [`fit_logistic_in`].
pub fn fit_logistic(series: &TimeSeries) -> Result<LogisticFit, Error> {
    fit_logistic_in(series, 0.02, 0.98)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logistic::Logistic;
    use crate::star::HubRateLimit;

    #[test]
    fn recovers_exact_logistic_parameters() {
        let m = Logistic::new(1000.0, 0.8, 1.0).unwrap();
        let series = m.series(0.0, 40.0, 0.5);
        let fit = fit_logistic(&series).unwrap();
        assert!((fit.rate - 0.8).abs() < 1e-6, "rate {}", fit.rate);
        assert!((fit.c - 999.0).abs() / 999.0 < 1e-4, "c {}", fit.c);
        assert!(fit.logit_rmse < 1e-8);
        // The reconstruction matches.
        assert!((fit.value_at(10.0) - m.fraction_at(10.0)).abs() < 1e-6);
    }

    #[test]
    fn recovers_rate_across_parameter_range() {
        for &(beta, i0) in &[(0.1, 1.0), (0.5, 5.0), (2.0, 2.0)] {
            let m = Logistic::new(500.0, beta, i0).unwrap();
            let horizon = 40.0 / beta;
            let series = m.series(0.0, horizon, horizon / 200.0);
            let fit = fit_logistic(&series).unwrap();
            assert!(
                (fit.rate - beta).abs() / beta < 1e-4,
                "beta {beta}: fitted {}",
                fit.rate
            );
        }
    }

    #[test]
    fn flags_non_logistic_curves_with_high_rmse() {
        // A hub-saturated curve has a linear regime: the logit fit's
        // residual must be clearly worse than for a true logistic.
        let hub = HubRateLimit::new(200.0, 0.8, 2.0, 1.0).unwrap();
        let hub_series = hub.series(400.0, 0.5);
        let hub_fit = fit_logistic(&hub_series).unwrap();
        let pure = Logistic::new(200.0, 0.8, 1.0).unwrap().series(0.0, 40.0, 0.5);
        let pure_fit = fit_logistic(&pure).unwrap();
        assert!(hub_fit.logit_rmse > 20.0 * pure_fit.logit_rmse.max(1e-12));
    }

    #[test]
    fn too_few_points_is_an_error() {
        let flat: TimeSeries = [(0.0, 0.001), (1.0, 0.002)].into_iter().collect();
        assert!(fit_logistic(&flat).is_err());
    }

    #[test]
    fn saturated_series_uses_interior_band_only() {
        // A curve that saturates fast still fits from its transition.
        let m = Logistic::new(100.0, 1.5, 1.0).unwrap();
        let series = m.series(0.0, 20.0, 0.05);
        let fit = fit_logistic(&series).unwrap();
        assert!((fit.rate - 1.5).abs() < 1e-4);
        assert!(fit.points < series.len());
    }
}
