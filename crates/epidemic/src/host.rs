//! Host-based rate limiting on the Internet (Section 5.1).
//!
//! Deploying rate-limiting filters at individual end hosts is
//! mathematically the star-graph leaf deployment of Section 4: a fraction
//! `q` of hosts scan at the filtered rate `β₂`, the rest at `β₁`, and the
//! infection is logistic with `λ = qβ₂ + (1−q)β₁` (Equation 3).
//!
//! The paper's Figure 2 plots this model for deployment fractions
//! 0%/5%/50%/80%/100% with `β₁ = 0.8` and `β₂ = 0.01`, showing that
//! host-based rate limiting "has very little benefit unless all end hosts
//! implement rate limiting".

use crate::error::Error;
use crate::series::{SeriesSet, TimeSeries};
use crate::star::LeafRateLimit;
use serde::{Deserialize, Serialize};

/// Host-based rate-limit deployment model (Equation 3 applied to the
/// Internet's end hosts).
///
/// A thin, intention-revealing wrapper over [`LeafRateLimit`]: the math is
/// identical; only the interpretation of `q` changes (fraction of *end
/// hosts* with the filter).
///
/// # Example
///
/// ```
/// use dynaquar_epidemic::host::HostRateLimit;
///
/// # fn main() -> Result<(), dynaquar_epidemic::Error> {
/// let m = HostRateLimit::new(1000.0, 0.8, 0.01, 1.0)?;
/// let t80 = m.with_deployment(0.8)?.time_to_fraction(0.5)?;
/// let t100 = m.with_deployment(1.0)?.time_to_fraction(0.5)?;
/// // The 80% -> 100% gap is enormous (the paper's headline observation).
/// assert!(t100 / t80 > 10.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HostRateLimit {
    n: f64,
    beta1: f64,
    beta2: f64,
    i0: f64,
}

impl HostRateLimit {
    /// Creates the model family: population `n`, unfiltered rate `beta1`,
    /// filtered rate `beta2`, initial infections `i0`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] under the same conditions as
    /// [`LeafRateLimit::new`].
    pub fn new(n: f64, beta1: f64, beta2: f64, i0: f64) -> Result<Self, Error> {
        // Validate by constructing a q=0 instance.
        LeafRateLimit::new(n, 0.0, beta1, beta2, i0)?;
        Ok(HostRateLimit { n, beta1, beta2, i0 })
    }

    /// Fixes the deployment fraction `q`, yielding the underlying
    /// Equation-3 model.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when `q ∉ [0, 1]`.
    pub fn with_deployment(&self, q: f64) -> Result<LeafRateLimit, Error> {
        LeafRateLimit::new(self.n, q, self.beta1, self.beta2, self.i0)
    }

    /// Infected-fraction curve for deployment fraction `q`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when `q ∉ [0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0` or `horizon < 0`.
    pub fn series(&self, q: f64, horizon: f64, dt: f64) -> Result<TimeSeries, Error> {
        Ok(self.with_deployment(q)?.series(horizon, dt))
    }

    /// Generates the full Figure-2 family of curves for the given
    /// deployment fractions.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when any fraction is outside
    /// `[0, 1]`.
    pub fn figure(
        &self,
        deployments: &[f64],
        horizon: f64,
        dt: f64,
    ) -> Result<SeriesSet, Error> {
        let mut set = SeriesSet::new("Rate limiting at individual hosts");
        for &q in deployments {
            let label = if q == 0.0 {
                "No RL".to_string()
            } else {
                format!("{:.0}% individual hosts w/ RL", q * 100.0)
            };
            set.push(label, self.series(q, horizon, dt)?);
        }
        Ok(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_model() -> HostRateLimit {
        HostRateLimit::new(1000.0, 0.8, 0.01, 1.0).unwrap()
    }

    #[test]
    fn slowdown_is_linear_in_unfiltered_fraction() {
        let m = paper_model();
        let t0 = m.with_deployment(0.0).unwrap().time_to_fraction(0.5).unwrap();
        let t50 = m.with_deployment(0.5).unwrap().time_to_fraction(0.5).unwrap();
        let t80 = m.with_deployment(0.8).unwrap().time_to_fraction(0.5).unwrap();
        // λ ≈ β1(1−q): ratios ≈ 1/(1−q).
        assert!((t50 / t0 - 1.0 / 0.5).abs() < 0.05);
        assert!((t80 / t0 - 1.0 / 0.2).abs() < 0.30);
    }

    #[test]
    fn five_percent_deployment_nearly_useless() {
        // The paper's point: 5% deployment is indistinguishable from none.
        let m = paper_model();
        let t0 = m.with_deployment(0.0).unwrap().time_to_fraction(0.9).unwrap();
        let t5 = m.with_deployment(0.05).unwrap().time_to_fraction(0.9).unwrap();
        assert!(t5 / t0 < 1.06);
    }

    #[test]
    fn full_deployment_dramatically_slower() {
        let m = paper_model();
        let t80 = m.with_deployment(0.8).unwrap().time_to_fraction(0.5).unwrap();
        let t100 = m.with_deployment(1.0).unwrap().time_to_fraction(0.5).unwrap();
        assert!(t100 / t80 > 10.0);
    }

    #[test]
    fn figure_has_expected_labels() {
        let m = paper_model();
        let fig = m
            .figure(&[0.0, 0.05, 0.5, 0.8, 1.0], 1000.0, 1.0)
            .unwrap();
        assert_eq!(fig.len(), 5);
        assert!(fig.get("No RL").is_some());
        assert!(fig.get("100% individual hosts w/ RL").is_some());
    }

    #[test]
    fn figure_curves_are_ordered_by_deployment() {
        // At any fixed time, more deployment -> fewer infected.
        let m = paper_model();
        let fig = m.figure(&[0.0, 0.5, 1.0], 1000.0, 1.0).unwrap();
        let at = |label: &str| fig.get(label).unwrap().value_at(20.0).unwrap();
        assert!(at("No RL") > at("50% individual hosts w/ RL"));
        assert!(at("50% individual hosts w/ RL") > at("100% individual hosts w/ RL"));
    }

    #[test]
    fn invalid_deployment_fraction_rejected() {
        let m = paper_model();
        assert!(m.with_deployment(1.5).is_err());
        assert!(m.series(-0.1, 10.0, 0.1).is_err());
    }
}
