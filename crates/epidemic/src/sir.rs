//! Classic SIR / SIS models — the "traditional models for which the rate
//! of immunization remains constant throughout the infection outbreak"
//! that Section 6 contrasts against (Kephart–White and the
//! epidemiological literature the paper cites).
//!
//! They are included both as baselines for the delayed-immunization
//! comparison and because downstream users of a worm-modeling library
//! expect them.

use crate::error::{ensure_non_negative, ensure_positive, Error};
use crate::ode::{solve_fixed, OdeSystem, Rk4};
use crate::series::TimeSeries;
use serde::{Deserialize, Serialize};

/// Susceptible–Infected–Removed model with constant removal rate:
///
/// ```text
/// dS/dt = −β S I / N
/// dI/dt =  β S I / N − µ I
/// dR/dt =  µ I
/// ```
///
/// # Example
///
/// ```
/// use dynaquar_epidemic::sir::Sir;
///
/// # fn main() -> Result<(), dynaquar_epidemic::Error> {
/// let m = Sir::new(1000.0, 0.8, 0.1, 1.0)?;
/// assert!((m.basic_reproduction_number() - 8.0).abs() < 1e-12);
/// let sol = m.solve(200.0, 0.01);
/// // With R0 >> 1 almost everyone is eventually removed.
/// assert!(sol.removed.final_value() > 0.9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sir {
    n: f64,
    beta: f64,
    mu: f64,
    i0: f64,
}

/// The three compartment trajectories of an SIR solution, as fractions
/// of the population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SirSolution {
    /// Susceptible fraction over time.
    pub susceptible: TimeSeries,
    /// Infected fraction over time.
    pub infected: TimeSeries,
    /// Removed (recovered/patched) fraction over time.
    pub removed: TimeSeries,
}

impl Sir {
    /// Creates the model: population `n`, contact rate `beta`, removal
    /// rate `mu`, initial infections `i0`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for out-of-domain parameters.
    pub fn new(n: f64, beta: f64, mu: f64, i0: f64) -> Result<Self, Error> {
        ensure_positive("n", n)?;
        ensure_positive("beta", beta)?;
        ensure_non_negative("mu", mu)?;
        ensure_positive("i0", i0)?;
        if i0 >= n {
            return Err(Error::InvalidParameter {
                name: "i0",
                value: i0,
                reason: "initial infections must be below the population size",
            });
        }
        Ok(Sir { n, beta, mu, i0 })
    }

    /// The basic reproduction number `R₀ = β/µ` (infinite for `µ = 0`).
    pub fn basic_reproduction_number(&self) -> f64 {
        if self.mu == 0.0 {
            f64::INFINITY
        } else {
            self.beta / self.mu
        }
    }

    /// Integrates the model over `[0, horizon]` with step `dt`.
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0` or `horizon < 0`.
    pub fn solve(&self, horizon: f64, dt: f64) -> SirSolution {
        let y0 = [self.n - self.i0, self.i0, 0.0];
        let sol = solve_fixed(self, &mut Rk4::new(3), 0.0, &y0, horizon, dt);
        SirSolution {
            susceptible: sol.component(0).scaled(1.0 / self.n),
            infected: sol.component(1).scaled(1.0 / self.n),
            removed: sol.component(2).scaled(1.0 / self.n),
        }
    }

    /// The epidemic-threshold statement: the infection grows initially
    /// iff `R₀ · S(0)/N > 1`.
    pub fn epidemic_occurs(&self) -> bool {
        self.basic_reproduction_number() * (self.n - self.i0) / self.n > 1.0
    }
}

impl OdeSystem for Sir {
    fn dim(&self) -> usize {
        3
    }

    fn deriv(&self, _t: f64, y: &[f64], dy: &mut [f64]) {
        let s = y[0].max(0.0);
        let i = y[1].max(0.0);
        let force = self.beta * s * i / self.n;
        dy[0] = -force;
        dy[1] = force - self.mu * i;
        dy[2] = self.mu * i;
    }
}

/// Susceptible–Infected–Susceptible model (Kephart–White): removal
/// returns hosts to the susceptible pool.
///
/// ```text
/// dI/dt = β I (N − I)/N − µ I
/// ```
///
/// with the well-known endemic equilibrium `I*/N = 1 − µ/β` when
/// `β > µ`, and extinction otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sis {
    n: f64,
    beta: f64,
    mu: f64,
    i0: f64,
}

impl Sis {
    /// Creates the model.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for out-of-domain parameters.
    pub fn new(n: f64, beta: f64, mu: f64, i0: f64) -> Result<Self, Error> {
        ensure_positive("n", n)?;
        ensure_positive("beta", beta)?;
        ensure_non_negative("mu", mu)?;
        ensure_positive("i0", i0)?;
        if i0 >= n {
            return Err(Error::InvalidParameter {
                name: "i0",
                value: i0,
                reason: "initial infections must be below the population size",
            });
        }
        Ok(Sis { n, beta, mu, i0 })
    }

    /// The endemic equilibrium fraction `max(0, 1 − µ/β)`.
    pub fn endemic_fraction(&self) -> f64 {
        (1.0 - self.mu / self.beta).max(0.0)
    }

    /// Integrates `I(t)/N` over `[0, horizon]` with step `dt`.
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0` or `horizon < 0`.
    pub fn series(&self, horizon: f64, dt: f64) -> TimeSeries {
        let sol = solve_fixed(self, &mut Rk4::new(1), 0.0, &[self.i0], horizon, dt);
        sol.component(0).scaled(1.0 / self.n)
    }
}

impl OdeSystem for Sis {
    fn dim(&self) -> usize {
        1
    }

    fn deriv(&self, _t: f64, y: &[f64], dy: &mut [f64]) {
        let i = y[0].clamp(0.0, self.n);
        dy[0] = self.beta * i * (self.n - i) / self.n - self.mu * i;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sir_conserves_population() {
        let m = Sir::new(1000.0, 0.8, 0.1, 1.0).unwrap();
        let sol = m.solve(100.0, 0.01);
        for ((ts, s), ((_, i), (_, r))) in sol
            .susceptible
            .iter()
            .zip(sol.infected.iter().zip(sol.removed.iter()))
        {
            assert!(
                (s + i + r - 1.0).abs() < 1e-9,
                "t = {ts}: S+I+R = {}",
                s + i + r
            );
        }
    }

    #[test]
    fn sir_epidemic_dies_out() {
        let m = Sir::new(1000.0, 0.8, 0.1, 1.0).unwrap();
        let sol = m.solve(300.0, 0.01);
        assert!(sol.infected.final_value() < 1e-3);
        assert!(sol.infected.max_value() > 0.3);
    }

    #[test]
    fn sir_subcritical_never_takes_off() {
        // R0 = 0.5 < 1: no epidemic.
        let m = Sir::new(1000.0, 0.1, 0.2, 10.0).unwrap();
        assert!(!m.epidemic_occurs());
        let sol = m.solve(200.0, 0.05);
        assert!(sol.infected.max_value() <= 10.0 / 1000.0 + 1e-9);
        // Final size stays small.
        assert!(sol.removed.final_value() < 0.05);
    }

    #[test]
    fn sir_r0() {
        let m = Sir::new(100.0, 0.8, 0.2, 1.0).unwrap();
        assert!((m.basic_reproduction_number() - 4.0).abs() < 1e-12);
        let mz = Sir::new(100.0, 0.8, 0.0, 1.0).unwrap();
        assert!(mz.basic_reproduction_number().is_infinite());
    }

    #[test]
    fn sis_reaches_endemic_equilibrium() {
        let m = Sis::new(1000.0, 0.8, 0.2, 1.0).unwrap();
        let s = m.series(200.0, 0.01);
        assert!((s.final_value() - m.endemic_fraction()).abs() < 1e-4);
        assert!((m.endemic_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn sis_subcritical_goes_extinct() {
        let m = Sis::new(1000.0, 0.1, 0.3, 50.0).unwrap();
        assert_eq!(m.endemic_fraction(), 0.0);
        let s = m.series(300.0, 0.05);
        assert!(s.final_value() < 1e-4);
    }

    #[test]
    fn sis_with_zero_mu_is_logistic() {
        let m = Sis::new(1000.0, 0.8, 0.0, 1.0).unwrap();
        let s = m.series(40.0, 0.01);
        let l = crate::logistic::Logistic::new(1000.0, 0.8, 1.0)
            .unwrap()
            .series(0.0, 40.0, 0.01);
        assert!(s.max_abs_difference(&l) < 1e-6);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(Sir::new(10.0, 0.8, 0.1, 20.0).is_err());
        assert!(Sir::new(10.0, 0.0, 0.1, 1.0).is_err());
        assert!(Sis::new(10.0, 0.8, -0.1, 1.0).is_err());
    }
}
