//! Edge-router rate limiting and the two-level subnet model (Section 5.2).
//!
//! With filters at edge routers, a worm spreads at two scales: fast within
//! a subnet (contact rate `β₁`, unconstrained by the edge filter) and slow
//! across subnets (contact rate `β₂ ≤ β₁`, capped by the filter). Both
//! scales follow logistic growth:
//!
//! ```text
//! x(t) = e^{β₁ t} / (C₁ + e^{β₁ t})   infected fraction within a subnet
//! y(t) = e^{β₂ t} / (C₂ + e^{β₂ t})   fraction of subnets infected
//! ```
//!
//! For a *local-preferential* worm the within-subnet rate is substantially
//! larger and the outbound demand smaller, so capping the edge "diminishes"
//! (paper's word) the filter's effectiveness. [`ScanAllocation`] performs
//! the scan-budget arithmetic that turns a worm's raw scan rate and
//! targeting policy into the pair (`β₁`, `β₂`).

use crate::error::{ensure_fraction, ensure_positive, Error};
use crate::logistic::Logistic;
use crate::series::TimeSeries;
use serde::{Deserialize, Serialize};

/// How a worm allocates its scans between its own subnet and the rest of
/// the network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Targeting {
    /// Uniformly random target selection over the whole address space:
    /// a fraction `m/N` of scans lands in the worm's own subnet.
    Random,
    /// Local-preferential selection: a fraction `local_bias` of scans is
    /// aimed at the worm's own subnet (e.g. Blaster-style sequential
    /// scanning of the local /16).
    LocalPreferential {
        /// Fraction of scans aimed at the local subnet, in `[0, 1]`.
        local_bias: f64,
    },
}

/// Splits a worm's raw per-host scan rate into within-subnet and
/// across-subnet contact rates, optionally capping the across-subnet rate
/// with an edge-router filter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScanAllocation {
    /// Raw per-host scan rate (contacts per time unit).
    pub scan_rate: f64,
    /// Number of subnets in the network.
    pub subnets: f64,
    /// Hosts per subnet.
    pub hosts_per_subnet: f64,
    /// Targeting policy.
    pub targeting: Targeting,
    /// Per-host-equivalent cap imposed by the edge filter on outbound
    /// contacts (`None` = no filter).
    pub edge_cap: Option<f64>,
}

impl ScanAllocation {
    /// Fraction of scans aimed at the local subnet.
    pub fn local_fraction(&self) -> f64 {
        match self.targeting {
            Targeting::Random => {
                let n = self.subnets * self.hosts_per_subnet;
                (self.hosts_per_subnet / n).min(1.0)
            }
            Targeting::LocalPreferential { local_bias } => local_bias,
        }
    }

    /// The within-subnet contact rate `β₁`.
    ///
    /// Scans aimed at the local subnet land on one of `m` hosts, so in the
    /// per-subnet logistic (normalized over `m`) the effective contact
    /// rate is the full local scan budget.
    pub fn beta_intra(&self) -> f64 {
        self.scan_rate * self.local_fraction()
    }

    /// The across-subnet contact rate `β₂`, after the edge cap (if any).
    pub fn beta_inter(&self) -> f64 {
        let uncapped = self.scan_rate * (1.0 - self.local_fraction());
        match self.edge_cap {
            Some(cap) => uncapped.min(cap),
            None => uncapped,
        }
    }
}

/// The two-level (subnet / Internet) worm propagation model of
/// Section 5.2.
///
/// # Example
///
/// Reproduce the shape of Figure 3: with an edge cap, a random worm slows
/// across subnets while a local-preferential worm barely notices.
///
/// ```
/// use dynaquar_epidemic::edge::TwoLevelModel;
///
/// # fn main() -> Result<(), dynaquar_epidemic::Error> {
/// let random = TwoLevelModel::new(50.0, 20.0, 0.8, 0.01, 1.0)?;
/// let subnets = random.across_subnet_series(800.0, 0.5);
/// let within = random.within_subnet_series(800.0, 0.5);
/// assert!(within.time_to_reach(0.5).unwrap() < subnets.time_to_reach(0.5).unwrap());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TwoLevelModel {
    subnets: f64,
    hosts_per_subnet: f64,
    beta_intra: f64,
    beta_inter: f64,
    i0: f64,
}

impl TwoLevelModel {
    /// Creates the model with explicit rates, the way the paper presents
    /// it: `beta_intra` = β₁ within the subnet, `beta_inter` = β₂ across
    /// subnets, `i0` initially infected subnets (and hosts within the
    /// seed subnet).
    ///
    /// The paper assumes `β₁ ≥ β₂` for its edge-router scenario; this
    /// constructor does *not* enforce that, because a purely random worm
    /// without rate limiting naturally has `β₁ < β₂` (most of its scans
    /// leave the small subnet).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for non-positive sizes/rates
    /// or `i0` at or above either population.
    pub fn new(
        subnets: f64,
        hosts_per_subnet: f64,
        beta_intra: f64,
        beta_inter: f64,
        i0: f64,
    ) -> Result<Self, Error> {
        ensure_positive("subnets", subnets)?;
        ensure_positive("hosts_per_subnet", hosts_per_subnet)?;
        ensure_positive("beta_intra", beta_intra)?;
        ensure_positive("beta_inter", beta_inter)?;
        ensure_positive("i0", i0)?;
        if i0 >= subnets || i0 >= hosts_per_subnet {
            return Err(Error::InvalidParameter {
                name: "i0",
                value: i0,
                reason: "initial infections must be below both population scales",
            });
        }
        Ok(TwoLevelModel {
            subnets,
            hosts_per_subnet,
            beta_intra,
            beta_inter,
            i0,
        })
    }

    /// Builds the model from a worm's scan allocation.
    ///
    /// # Errors
    ///
    /// Propagates [`Error::InvalidParameter`] from the derived rates
    /// (e.g. a zero local fraction).
    pub fn from_allocation(alloc: &ScanAllocation, i0: f64) -> Result<Self, Error> {
        if let Targeting::LocalPreferential { local_bias } = alloc.targeting {
            ensure_fraction("local_bias", local_bias)?;
        }
        TwoLevelModel::new(
            alloc.subnets,
            alloc.hosts_per_subnet,
            alloc.beta_intra(),
            alloc.beta_inter(),
            i0,
        )
    }

    /// The within-subnet contact rate `β₁`.
    pub fn beta_intra(&self) -> f64 {
        self.beta_intra
    }

    /// The across-subnet contact rate `β₂`.
    pub fn beta_inter(&self) -> f64 {
        self.beta_inter
    }

    /// Infected fraction *within a subnet* over time — the paper's
    /// Figure 3(b) curves.
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0` or `horizon < 0`.
    pub fn within_subnet_series(&self, horizon: f64, dt: f64) -> TimeSeries {
        Logistic::new(self.hosts_per_subnet, self.beta_intra, self.i0)
            .expect("parameters already validated")
            .series(0.0, horizon, dt)
    }

    /// Fraction of *subnets infected* over time — the paper's Figure 3(a)
    /// curves.
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0` or `horizon < 0`.
    pub fn across_subnet_series(&self, horizon: f64, dt: f64) -> TimeSeries {
        Logistic::new(self.subnets, self.beta_inter, self.i0)
            .expect("parameters already validated")
            .series(0.0, horizon, dt)
    }

    /// Overall infected-host fraction, approximated as the product of the
    /// two scales (`y(t) · x(t)`): each infected subnet is roughly as
    /// internally saturated as the seed subnet.
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0` or `horizon < 0`.
    pub fn overall_series(&self, horizon: f64, dt: f64) -> TimeSeries {
        let within = self.within_subnet_series(horizon, dt);
        let across = self.across_subnet_series(horizon, dt);
        within
            .iter()
            .zip(across.iter())
            .map(|((t, x), (_, y))| (t, x * y))
            .collect()
    }
}

/// The *coupled* two-level system: unlike [`TwoLevelModel`]'s independent
/// logistics, the cross-subnet seeding pressure here depends on how
/// internally saturated the infected subnets actually are, and the edge
/// cap binds on the *aggregate* outbound demand:
///
/// ```text
/// dx/dt = β_intra · x (1 − x)                              (within subnets)
/// dy/dt = min(β_out · x · m,  cap) · y (1 − y) / m         (across subnets)
/// ```
///
/// where `x` is the mean infected fraction inside infected subnets, `y`
/// the fraction of subnets infected, `m` hosts per subnet, `β_out` the
/// per-host outbound scan rate, and `cap` the edge router's aggregate
/// allowance. This is the model behind the observation that a
/// local-preferential worm "fills" its subnet and only then saturates
/// the edge cap.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoupledTwoLevel {
    subnets: f64,
    hosts_per_subnet: f64,
    beta_intra: f64,
    beta_out: f64,
    edge_cap: Option<f64>,
    x0: f64,
    y0: f64,
}

impl CoupledTwoLevel {
    /// Creates the coupled model from a scan allocation; `cap` is the
    /// per-subnet aggregate outbound allowance (contacts per time unit).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for non-positive sizes or
    /// rates.
    pub fn from_allocation(alloc: &ScanAllocation) -> Result<Self, Error> {
        ensure_positive("subnets", alloc.subnets)?;
        ensure_positive("hosts_per_subnet", alloc.hosts_per_subnet)?;
        ensure_positive("scan_rate", alloc.scan_rate)?;
        if let Targeting::LocalPreferential { local_bias } = alloc.targeting {
            ensure_fraction("local_bias", local_bias)?;
        }
        let beta_intra = alloc.beta_intra().max(1e-9);
        let beta_out = alloc.scan_rate * (1.0 - alloc.local_fraction());
        Ok(CoupledTwoLevel {
            subnets: alloc.subnets,
            hosts_per_subnet: alloc.hosts_per_subnet,
            beta_intra,
            beta_out,
            edge_cap: alloc.edge_cap,
            x0: 1.0 / alloc.hosts_per_subnet,
            y0: 1.0 / alloc.subnets,
        })
    }

    /// Integrates the coupled system, returning `(subnet fraction y,
    /// within fraction x, overall fraction x·y)` series.
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0` or `horizon < 0`.
    pub fn solve(&self, horizon: f64, dt: f64) -> (TimeSeries, TimeSeries, TimeSeries) {
        let sol = crate::ode::solve_fixed(
            self,
            &mut crate::ode::Rk4::new(2),
            0.0,
            &[self.y0, self.x0],
            horizon,
            dt,
        );
        let y = sol.component(0);
        let x = sol.component(1);
        let overall = x
            .iter()
            .zip(y.iter())
            .map(|((t, xv), (_, yv))| (t, xv * yv))
            .collect();
        (y, x, overall)
    }

    /// The aggregate outbound demand of one fully infected subnet.
    pub fn outbound_demand(&self) -> f64 {
        self.beta_out * self.hosts_per_subnet
    }
}

impl crate::ode::OdeSystem for CoupledTwoLevel {
    fn dim(&self) -> usize {
        2
    }

    fn deriv(&self, _t: f64, state: &[f64], dy: &mut [f64]) {
        let y = state[0].clamp(0.0, 1.0);
        let x = state[1].clamp(0.0, 1.0);
        // Within-subnet logistic growth.
        dy[1] = self.beta_intra * x * (1.0 - x);
        // Cross-subnet seeding: outbound scans from infected subnets,
        // capped at the edge.
        let demand = self.beta_out * x * self.hosts_per_subnet;
        let allowed = match self.edge_cap {
            Some(cap) => demand.min(cap),
            None => demand,
        };
        // A seed lands on a not-yet-infected subnet with probability
        // (1 − y); normalizing by subnet size converts host-contacts to
        // subnet-scale growth.
        dy[0] = allowed * y * (1.0 - y) / self.hosts_per_subnet;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_allocation_splits_by_subnet_size() {
        let alloc = ScanAllocation {
            scan_rate: 0.8,
            subnets: 50.0,
            hosts_per_subnet: 20.0,
            targeting: Targeting::Random,
            edge_cap: None,
        };
        // m/N = 20/1000 = 0.02
        assert!((alloc.local_fraction() - 0.02).abs() < 1e-12);
        assert!((alloc.beta_intra() - 0.016).abs() < 1e-12);
        assert!((alloc.beta_inter() - 0.784).abs() < 1e-12);
    }

    #[test]
    fn local_pref_allocation_uses_bias() {
        let alloc = ScanAllocation {
            scan_rate: 0.8,
            subnets: 50.0,
            hosts_per_subnet: 20.0,
            targeting: Targeting::LocalPreferential { local_bias: 0.9 },
            edge_cap: None,
        };
        assert!((alloc.beta_intra() - 0.72).abs() < 1e-12);
        assert!((alloc.beta_inter() - 0.08).abs() < 1e-12);
    }

    #[test]
    fn edge_cap_binds_random_harder_than_local_pref() {
        // The core Figure 3/5 insight: a cap of 0.05 cuts the random
        // worm's inter rate ~16x but the local-pref worm's only ~1.6x.
        let cap = Some(0.05);
        let random = ScanAllocation {
            scan_rate: 0.8,
            subnets: 50.0,
            hosts_per_subnet: 20.0,
            targeting: Targeting::Random,
            edge_cap: cap,
        };
        let localp = ScanAllocation {
            scan_rate: 0.8,
            subnets: 50.0,
            hosts_per_subnet: 20.0,
            targeting: Targeting::LocalPreferential { local_bias: 0.9 },
            edge_cap: cap,
        };
        let random_slowdown = 0.784 / random.beta_inter();
        let localp_slowdown = 0.08 / localp.beta_inter();
        assert!(random_slowdown > 10.0);
        assert!(localp_slowdown < 2.0);
    }

    #[test]
    fn allows_inter_rate_above_intra_rate() {
        // A random worm without RL: most scans leave the subnet.
        assert!(TwoLevelModel::new(50.0, 20.0, 0.01, 0.8, 1.0).is_ok());
    }

    #[test]
    fn rejects_i0_above_population() {
        assert!(TwoLevelModel::new(50.0, 20.0, 0.8, 0.01, 25.0).is_err());
    }

    #[test]
    fn within_faster_than_across() {
        let m = TwoLevelModel::new(50.0, 20.0, 0.8, 0.01, 1.0).unwrap();
        let tw = m.within_subnet_series(2000.0, 1.0).time_to_reach(0.5).unwrap();
        let ta = m.across_subnet_series(2000.0, 1.0).time_to_reach(0.5).unwrap();
        assert!(tw < ta / 10.0);
    }

    #[test]
    fn overall_is_product_of_scales() {
        let m = TwoLevelModel::new(50.0, 20.0, 0.8, 0.1, 1.0).unwrap();
        let o = m.overall_series(100.0, 1.0);
        let w = m.within_subnet_series(100.0, 1.0);
        let a = m.across_subnet_series(100.0, 1.0);
        let t = 30.0;
        let expect = w.value_at(t).unwrap() * a.value_at(t).unwrap();
        assert!((o.value_at(t).unwrap() - expect).abs() < 1e-12);
    }

    #[test]
    fn from_allocation_roundtrip() {
        let alloc = ScanAllocation {
            scan_rate: 0.8,
            subnets: 50.0,
            hosts_per_subnet: 20.0,
            targeting: Targeting::LocalPreferential { local_bias: 0.9 },
            edge_cap: Some(0.05),
        };
        let m = TwoLevelModel::from_allocation(&alloc, 1.0).unwrap();
        assert!((m.beta_intra() - 0.72).abs() < 1e-12);
        assert!((m.beta_inter() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn from_allocation_rejects_bad_bias() {
        let alloc = ScanAllocation {
            scan_rate: 0.8,
            subnets: 50.0,
            hosts_per_subnet: 20.0,
            targeting: Targeting::LocalPreferential { local_bias: 1.5 },
            edge_cap: None,
        };
        assert!(TwoLevelModel::from_allocation(&alloc, 1.0).is_err());
    }

    #[test]
    fn coupled_model_solves_and_saturates() {
        let alloc = ScanAllocation {
            scan_rate: 0.8,
            subnets: 20.0,
            hosts_per_subnet: 25.0,
            targeting: Targeting::LocalPreferential { local_bias: 0.9 },
            edge_cap: None,
        };
        let m = CoupledTwoLevel::from_allocation(&alloc).unwrap();
        let (y, x, overall) = m.solve(400.0, 0.1);
        assert!(x.final_value() > 0.99, "within-subnet saturates");
        assert!(y.final_value() > 0.99, "subnets saturate");
        // Overall is the product, monotone, bounded.
        let mut prev = 0.0;
        for (_, v) in overall.iter() {
            assert!(v >= prev - 1e-9 && v <= 1.0 + 1e-9);
            prev = v;
        }
        assert!((m.outbound_demand() - 0.08 * 25.0).abs() < 1e-9);
    }

    #[test]
    fn coupled_model_cap_binds_on_aggregate_demand() {
        let base = ScanAllocation {
            scan_rate: 0.8,
            subnets: 20.0,
            hosts_per_subnet: 25.0,
            targeting: Targeting::Random,
            edge_cap: None,
        };
        let free = CoupledTwoLevel::from_allocation(&base).unwrap();
        let capped = CoupledTwoLevel::from_allocation(&ScanAllocation {
            edge_cap: Some(0.5),
            ..base
        })
        .unwrap();
        let t_free = free.solve(3000.0, 0.25).0.time_to_reach(0.5).unwrap();
        let t_capped = capped.solve(3000.0, 0.25).0.time_to_reach(0.5).unwrap();
        // The random worm's outbound demand (0.78 * 25 ≈ 19.6) dwarfs a
        // cap of 0.5: a large slowdown across subnets (the within-subnet
        // ramp gates both cases early, so the ratio is below the raw
        // 39x rate reduction).
        assert!(t_capped > 2.5 * t_free, "{t_capped} vs {t_free}");
    }

    #[test]
    fn coupled_model_cap_barely_touches_local_preferential() {
        // LP worm with modest outbound demand vs a cap sized near it.
        let base = ScanAllocation {
            scan_rate: 0.8,
            subnets: 20.0,
            hosts_per_subnet: 25.0,
            targeting: Targeting::LocalPreferential { local_bias: 0.9 },
            edge_cap: None,
        };
        let free = CoupledTwoLevel::from_allocation(&base).unwrap();
        let capped = CoupledTwoLevel::from_allocation(&ScanAllocation {
            edge_cap: Some(1.5),
            ..base
        })
        .unwrap();
        let t_free = free.solve(3000.0, 0.25).0.time_to_reach(0.5).unwrap();
        let t_capped = capped.solve(3000.0, 0.25).0.time_to_reach(0.5).unwrap();
        // Demand 0.08*25 = 2.0 vs cap 1.5: mild slowdown only.
        assert!(t_capped < 1.6 * t_free, "{t_capped} vs {t_free}");
    }

    #[test]
    fn edge_rl_effectiveness_figure3_shape() {
        // Random worm with edge RL is slowed dramatically across subnets;
        // local-pref worm with the same cap barely changes.
        let mk = |targeting, cap| {
            let alloc = ScanAllocation {
                scan_rate: 0.8,
                subnets: 50.0,
                hosts_per_subnet: 20.0,
                targeting,
                edge_cap: cap,
            };
            TwoLevelModel::from_allocation(&alloc, 1.0).unwrap()
        };
        let t = |m: TwoLevelModel| {
            m.across_subnet_series(20000.0, 2.0)
                .time_to_reach(0.5)
                .unwrap()
        };
        let lp = Targeting::LocalPreferential { local_bias: 0.9 };
        let slow_random = t(mk(Targeting::Random, Some(0.05))) / t(mk(Targeting::Random, None));
        let slow_local = t(mk(lp, Some(0.05))) / t(mk(lp, None));
        assert!(slow_random > 5.0, "random slowdown = {slow_random}");
        assert!(slow_local < 2.0, "local-pref slowdown = {slow_local}");
    }
}
