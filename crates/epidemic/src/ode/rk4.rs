//! Classic fourth-order Runge–Kutta.

use super::{OdeSystem, Stepper};

/// The classic RK4 stepper — the workhorse for every analytical model in
/// this crate.
///
/// Fourth-order accurate; with the step sizes used by the figures
/// (`h <= 0.1` time units) the discretization error is far below plotting
/// resolution.
#[derive(Debug, Clone)]
pub struct Rk4 {
    k1: Vec<f64>,
    k2: Vec<f64>,
    k3: Vec<f64>,
    k4: Vec<f64>,
    tmp: Vec<f64>,
}

impl Rk4 {
    /// Creates a stepper with scratch space for systems of dimension `dim`.
    pub fn new(dim: usize) -> Self {
        Rk4 {
            k1: vec![0.0; dim],
            k2: vec![0.0; dim],
            k3: vec![0.0; dim],
            k4: vec![0.0; dim],
            tmp: vec![0.0; dim],
        }
    }
}

impl Stepper for Rk4 {
    #[allow(clippy::needless_range_loop)] // multi-array stencil math reads better indexed
    fn step(&mut self, sys: &dyn OdeSystem, t: f64, y: &mut [f64], h: f64) {
        debug_assert_eq!(y.len(), self.k1.len(), "scratch dimension mismatch");
        let n = y.len();

        sys.deriv(t, y, &mut self.k1);
        for i in 0..n {
            self.tmp[i] = y[i] + 0.5 * h * self.k1[i];
        }
        sys.deriv(t + 0.5 * h, &self.tmp, &mut self.k2);
        for i in 0..n {
            self.tmp[i] = y[i] + 0.5 * h * self.k2[i];
        }
        sys.deriv(t + 0.5 * h, &self.tmp, &mut self.k3);
        for i in 0..n {
            self.tmp[i] = y[i] + h * self.k3[i];
        }
        sys.deriv(t + h, &self.tmp, &mut self.k4);
        for i in 0..n {
            y[i] += h / 6.0 * (self.k1[i] + 2.0 * self.k2[i] + 2.0 * self.k3[i] + self.k4[i]);
        }
    }

    fn name(&self) -> &'static str {
        "rk4"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ode::FnSystem;

    #[test]
    fn exact_for_cubic_polynomials() {
        // RK4 integrates y' = t^3 exactly (order 4).
        let sys = FnSystem::new(1, |t, _y, dy| dy[0] = t * t * t);
        let mut rk = Rk4::new(1);
        let mut y = [0.0];
        rk.step(&sys, 0.0, &mut y, 2.0);
        // Integral of t^3 from 0 to 2 is 4.
        assert!((y[0] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn single_decay_step_accuracy() {
        let sys = FnSystem::new(1, |_t, y, dy| dy[0] = -y[0]);
        let mut rk = Rk4::new(1);
        let mut y = [1.0];
        rk.step(&sys, 0.0, &mut y, 0.1);
        assert!((y[0] - (-0.1f64).exp()).abs() < 1e-7);
    }
}
