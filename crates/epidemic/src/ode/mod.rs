//! Small, allocation-light ODE integrators.
//!
//! The paper's analytical curves are solutions of one- or two-dimensional
//! ODE systems. This module provides a minimal [`OdeSystem`] abstraction,
//! two fixed-step integrators ([`Euler`], [`Rk4`]) and one adaptive
//! embedded Runge–Kutta integrator ([`DormandPrince`]; RK45), plus a
//! [`solve_fixed`] driver that samples a solution onto a regular grid.
//!
//! # Example
//!
//! Integrate exponential decay `y' = -y` and compare with `e^{-t}`:
//!
//! ```
//! use dynaquar_epidemic::ode::{solve_fixed, FnSystem, Rk4};
//!
//! let sys = FnSystem::new(1, |_t, y, dy| dy[0] = -y[0]);
//! let sol = solve_fixed(&sys, &mut Rk4::new(1), 0.0, &[1.0], 5.0, 1e-3);
//! let (t, y) = sol.last().unwrap();
//! assert!((y[0] - (-t).exp()).abs() < 1e-9);
//! ```

mod euler;
mod rk4;
mod rk45;

pub use euler::Euler;
pub use rk4::Rk4;
pub use rk45::DormandPrince;

use crate::error::Error;

/// A first-order ODE system `y' = f(t, y)`.
pub trait OdeSystem {
    /// Dimension of the state vector.
    fn dim(&self) -> usize;

    /// Writes `f(t, y)` into `dy`.
    ///
    /// Implementations may assume `y.len() == dy.len() == self.dim()`.
    fn deriv(&self, t: f64, y: &[f64], dy: &mut [f64]);
}

/// An [`OdeSystem`] defined by a closure — convenient for tests and
/// one-off models.
pub struct FnSystem<F> {
    dim: usize,
    f: F,
}

impl<F> std::fmt::Debug for FnSystem<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnSystem").field("dim", &self.dim).finish()
    }
}

impl<F: Fn(f64, &[f64], &mut [f64])> FnSystem<F> {
    /// Wraps closure `f` as a system of dimension `dim`.
    pub fn new(dim: usize, f: F) -> Self {
        FnSystem { dim, f }
    }
}

impl<F: Fn(f64, &[f64], &mut [f64])> OdeSystem for FnSystem<F> {
    fn dim(&self) -> usize {
        self.dim
    }

    fn deriv(&self, t: f64, y: &[f64], dy: &mut [f64]) {
        (self.f)(t, y, dy)
    }
}

/// A single-step integrator advancing a state vector by one step `h`.
///
/// This trait is object-safe so drivers can be written against
/// `&mut dyn Stepper`.
pub trait Stepper {
    /// Advances `y` in place from `t` to `t + h`.
    fn step(&mut self, sys: &dyn OdeSystem, t: f64, y: &mut [f64], h: f64);

    /// Short human-readable name (for bench labels).
    fn name(&self) -> &'static str;
}

/// A sampled ODE solution: state snapshots on a time grid.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    times: Vec<f64>,
    states: Vec<Vec<f64>>,
}

impl Solution {
    /// The sample times.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Returns `true` when the solution holds no samples.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The `i`-th snapshot as `(t, state)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn snapshot(&self, i: usize) -> (f64, &[f64]) {
        (self.times[i], &self.states[i])
    }

    /// The final snapshot, if any.
    pub fn last(&self) -> Option<(f64, &[f64])> {
        self.times
            .last()
            .map(|&t| (t, self.states.last().expect("same length").as_slice()))
    }

    /// Extracts component `k` as a [`crate::TimeSeries`].
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of bounds for the system dimension.
    pub fn component(&self, k: usize) -> crate::TimeSeries {
        self.times
            .iter()
            .zip(&self.states)
            .map(|(&t, s)| (t, s[k]))
            .collect()
    }

    /// Iterates over `(t, state)` snapshots.
    pub fn iter(&self) -> impl Iterator<Item = (f64, &[f64])> {
        self.times
            .iter()
            .zip(&self.states)
            .map(|(&t, s)| (t, s.as_slice()))
    }
}

/// Integrates `sys` from `t0` to `t1` with fixed step `h`, recording every
/// step.
///
/// The final step is shortened so the solution ends exactly at `t1`.
///
/// # Panics
///
/// Panics if `y0.len() != sys.dim()`, if `h <= 0`, or if `t1 < t0`.
pub fn solve_fixed(
    sys: &dyn OdeSystem,
    stepper: &mut dyn Stepper,
    t0: f64,
    y0: &[f64],
    t1: f64,
    h: f64,
) -> Solution {
    assert_eq!(y0.len(), sys.dim(), "initial state has wrong dimension");
    assert!(h > 0.0, "step size must be positive");
    assert!(t1 >= t0, "integration interval must be forward in time");
    let mut t = t0;
    let mut y = y0.to_vec();
    let cap = ((t1 - t0) / h).ceil() as usize + 2;
    let mut times = Vec::with_capacity(cap);
    let mut states = Vec::with_capacity(cap);
    times.push(t);
    states.push(y.clone());
    while t < t1 {
        let step = h.min(t1 - t);
        stepper.step(sys, t, &mut y, step);
        t += step;
        times.push(t);
        states.push(y.clone());
    }
    Solution { times, states }
}

/// Like [`solve_fixed`] but records only every `sample_every`-th step
/// (always recording the first and last), keeping memory bounded for long
/// horizons.
///
/// # Panics
///
/// Same conditions as [`solve_fixed`], plus `sample_every == 0`.
pub fn solve_fixed_sampled(
    sys: &dyn OdeSystem,
    stepper: &mut dyn Stepper,
    t0: f64,
    y0: &[f64],
    t1: f64,
    h: f64,
    sample_every: usize,
) -> Solution {
    assert!(sample_every > 0, "sample_every must be positive");
    assert_eq!(y0.len(), sys.dim(), "initial state has wrong dimension");
    assert!(h > 0.0, "step size must be positive");
    assert!(t1 >= t0, "integration interval must be forward in time");
    let mut t = t0;
    let mut y = y0.to_vec();
    let mut times = Vec::new();
    let mut states = Vec::new();
    times.push(t);
    states.push(y.clone());
    let mut i = 0usize;
    while t < t1 {
        let step = h.min(t1 - t);
        stepper.step(sys, t, &mut y, step);
        t += step;
        i += 1;
        if i.is_multiple_of(sample_every) || t >= t1 {
            times.push(t);
            states.push(y.clone());
        }
    }
    Solution { times, states }
}

/// Integrates with fixed step `h` until `stop(t, y)` returns `true` or
/// `max_t` is reached, recording every step — the event-driven driver
/// behind "integrate until the infection reaches level α".
///
/// Returns the solution and whether the stop condition fired (as opposed
/// to hitting `max_t`).
///
/// # Panics
///
/// Panics if `y0.len() != sys.dim()`, `h <= 0`, or `max_t < t0`.
pub fn solve_fixed_until<F: FnMut(f64, &[f64]) -> bool>(
    sys: &dyn OdeSystem,
    stepper: &mut dyn Stepper,
    t0: f64,
    y0: &[f64],
    h: f64,
    max_t: f64,
    mut stop: F,
) -> (Solution, bool) {
    assert_eq!(y0.len(), sys.dim(), "initial state has wrong dimension");
    assert!(h > 0.0, "step size must be positive");
    assert!(max_t >= t0, "integration interval must be forward in time");
    let mut t = t0;
    let mut y = y0.to_vec();
    let mut times = vec![t];
    let mut states = vec![y.clone()];
    if stop(t, &y) {
        return (Solution { times, states }, true);
    }
    while t < max_t {
        let step = h.min(max_t - t);
        stepper.step(sys, t, &mut y, step);
        t += step;
        times.push(t);
        states.push(y.clone());
        if stop(t, &y) {
            return (Solution { times, states }, true);
        }
    }
    (Solution { times, states }, false)
}

/// Like [`solve_fixed`], but verifies after every step that the state is
/// still finite, returning [`Error::NonFiniteState`] the moment the
/// system diverges (NaN or infinity) instead of silently recording junk
/// samples to the end of the horizon.
///
/// # Errors
///
/// Returns [`Error::NonFiniteState`] when any state component stops
/// being finite, with `t` set to the end of the offending step.
///
/// # Panics
///
/// Same conditions as [`solve_fixed`].
pub fn solve_fixed_checked(
    sys: &dyn OdeSystem,
    stepper: &mut dyn Stepper,
    t0: f64,
    y0: &[f64],
    t1: f64,
    h: f64,
) -> Result<Solution, Error> {
    assert_eq!(y0.len(), sys.dim(), "initial state has wrong dimension");
    assert!(h > 0.0, "step size must be positive");
    assert!(t1 >= t0, "integration interval must be forward in time");
    let mut t = t0;
    let mut y = y0.to_vec();
    let cap = ((t1 - t0) / h).ceil() as usize + 2;
    let mut times = Vec::with_capacity(cap);
    let mut states = Vec::with_capacity(cap);
    times.push(t);
    states.push(y.clone());
    while t < t1 {
        let step = h.min(t1 - t);
        stepper.step(sys, t, &mut y, step);
        t += step;
        if y.iter().any(|v| !v.is_finite()) {
            return Err(Error::NonFiniteState { t });
        }
        times.push(t);
        states.push(y.clone());
    }
    Ok(Solution { times, states })
}

/// Integrates `sys` adaptively from `t0` to `t1` with local error
/// tolerance `tol`, using the Dormand–Prince 5(4) pair.
///
/// # Errors
///
/// Returns [`Error::StepSizeUnderflow`] when the controller cannot meet
/// `tol` even at the minimum step size (stiff or ill-posed system), and
/// [`Error::NonFiniteState`] when the system diverges to NaN/infinity.
///
/// # Panics
///
/// Panics if `y0.len() != sys.dim()`, `tol <= 0`, or `t1 < t0`.
pub fn solve_adaptive(
    sys: &dyn OdeSystem,
    t0: f64,
    y0: &[f64],
    t1: f64,
    tol: f64,
) -> Result<Solution, Error> {
    assert_eq!(y0.len(), sys.dim(), "initial state has wrong dimension");
    assert!(tol > 0.0, "tolerance must be positive");
    assert!(t1 >= t0, "integration interval must be forward in time");
    let mut dp = DormandPrince::new(sys.dim());
    dp.solve(sys, t0, y0, t1, tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decay() -> FnSystem<impl Fn(f64, &[f64], &mut [f64])> {
        FnSystem::new(1, |_t, y, dy| dy[0] = -y[0])
    }

    /// Two-dimensional harmonic oscillator: y'' = -y.
    fn oscillator() -> FnSystem<impl Fn(f64, &[f64], &mut [f64])> {
        FnSystem::new(2, |_t, y, dy| {
            dy[0] = y[1];
            dy[1] = -y[0];
        })
    }

    #[test]
    fn euler_first_order_convergence() {
        let sys = decay();
        let mut errs = Vec::new();
        for &h in &[0.1, 0.05, 0.025] {
            let sol = solve_fixed(&sys, &mut Euler::new(1), 0.0, &[1.0], 1.0, h);
            let (_, y) = sol.last().unwrap();
            errs.push((y[0] - (-1.0f64).exp()).abs());
        }
        // Halving h should roughly halve the error.
        assert!(errs[0] / errs[1] > 1.7 && errs[0] / errs[1] < 2.3);
        assert!(errs[1] / errs[2] > 1.7 && errs[1] / errs[2] < 2.3);
    }

    #[test]
    fn rk4_fourth_order_convergence() {
        let sys = decay();
        let mut errs = Vec::new();
        for &h in &[0.2, 0.1] {
            let sol = solve_fixed(&sys, &mut Rk4::new(1), 0.0, &[1.0], 1.0, h);
            let (_, y) = sol.last().unwrap();
            errs.push((y[0] - (-1.0f64).exp()).abs());
        }
        // Halving h should reduce the error by ~16x.
        assert!(errs[0] / errs[1] > 10.0);
    }

    #[test]
    fn rk4_oscillator_preserves_energy_approximately() {
        let sys = oscillator();
        let sol = solve_fixed(&sys, &mut Rk4::new(2), 0.0, &[1.0, 0.0], 10.0, 0.01);
        let (_, y) = sol.last().unwrap();
        let energy = y[0] * y[0] + y[1] * y[1];
        assert!((energy - 1.0).abs() < 1e-6);
        // cos(10), -sin(10)
        assert!((y[0] - 10.0f64.cos()).abs() < 1e-6);
        assert!((y[1] + 10.0f64.sin()).abs() < 1e-6);
    }

    #[test]
    fn adaptive_matches_closed_form() {
        let sys = decay();
        let sol = solve_adaptive(&sys, 0.0, &[1.0], 5.0, 1e-10).unwrap();
        let (t, y) = sol.last().unwrap();
        assert!((t - 5.0).abs() < 1e-12);
        assert!((y[0] - (-5.0f64).exp()).abs() < 1e-8);
    }

    #[test]
    fn adaptive_oscillator_accuracy() {
        let sys = oscillator();
        let sol = solve_adaptive(&sys, 0.0, &[1.0, 0.0], 20.0, 1e-9).unwrap();
        let (_, y) = sol.last().unwrap();
        assert!((y[0] - 20.0f64.cos()).abs() < 1e-6);
    }

    #[test]
    fn solution_component_extraction() {
        let sys = oscillator();
        let sol = solve_fixed(&sys, &mut Rk4::new(2), 0.0, &[1.0, 0.0], 1.0, 0.1);
        let c0 = sol.component(0);
        assert_eq!(c0.len(), sol.len());
        assert_eq!(c0.first().unwrap(), (0.0, 1.0));
    }

    #[test]
    fn solve_fixed_ends_exactly_at_t1() {
        let sys = decay();
        // 0.3 does not divide 1.0.
        let sol = solve_fixed(&sys, &mut Euler::new(1), 0.0, &[1.0], 1.0, 0.3);
        assert!((sol.last().unwrap().0 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_fixed_zero_interval() {
        let sys = decay();
        let sol = solve_fixed(&sys, &mut Rk4::new(1), 2.0, &[3.0], 2.0, 0.1);
        assert_eq!(sol.len(), 1);
        assert_eq!(sol.snapshot(0), (2.0, &[3.0][..]));
    }

    #[test]
    fn sampled_driver_records_fewer_points() {
        let sys = decay();
        let full = solve_fixed(&sys, &mut Rk4::new(1), 0.0, &[1.0], 1.0, 0.01);
        let sparse =
            solve_fixed_sampled(&sys, &mut Rk4::new(1), 0.0, &[1.0], 1.0, 0.01, 10);
        assert!(sparse.len() < full.len());
        let (t_full, y_full) = full.last().unwrap();
        let (t_sparse, y_sparse) = sparse.last().unwrap();
        assert_eq!(t_full, t_sparse);
        assert_eq!(y_full, y_sparse);
    }

    #[test]
    #[should_panic(expected = "wrong dimension")]
    fn solve_fixed_dimension_mismatch_panics() {
        let sys = decay();
        solve_fixed(&sys, &mut Rk4::new(1), 0.0, &[1.0, 2.0], 1.0, 0.1);
    }

    #[test]
    fn solve_until_stops_at_condition() {
        // Integrate logistic growth until I reaches half the population.
        let sys = FnSystem::new(1, |_t, y, dy| dy[0] = 0.8 * y[0] * (100.0 - y[0]) / 100.0);
        let (sol, fired) = solve_fixed_until(
            &sys,
            &mut Rk4::new(1),
            0.0,
            &[1.0],
            0.01,
            1000.0,
            |_t, y| y[0] >= 50.0,
        );
        assert!(fired);
        let (t, y) = sol.last().unwrap();
        assert!((y[0] - 50.0).abs() < 0.5);
        // Matches the closed-form time-to-half: ln(99)/0.8 ≈ 5.74.
        assert!((t - (99.0f64).ln() / 0.8).abs() < 0.05);
    }

    #[test]
    fn solve_until_reports_timeout() {
        let sys = FnSystem::new(1, |_t, _y, dy| dy[0] = 0.0);
        let (sol, fired) =
            solve_fixed_until(&sys, &mut Euler::new(1), 0.0, &[1.0], 0.1, 1.0, |_t, y| {
                y[0] > 2.0
            });
        assert!(!fired);
        assert!((sol.last().unwrap().0 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_until_checks_initial_state() {
        let sys = FnSystem::new(1, |_t, _y, dy| dy[0] = 1.0);
        let (sol, fired) =
            solve_fixed_until(&sys, &mut Euler::new(1), 0.0, &[5.0], 0.1, 1.0, |_t, y| {
                y[0] >= 5.0
            });
        assert!(fired);
        assert_eq!(sol.len(), 1);
    }

    #[test]
    fn checked_driver_matches_unchecked_on_healthy_system() {
        let sys = decay();
        let plain = solve_fixed(&sys, &mut Rk4::new(1), 0.0, &[1.0], 1.0, 0.1);
        let checked =
            solve_fixed_checked(&sys, &mut Rk4::new(1), 0.0, &[1.0], 1.0, 0.1).unwrap();
        assert_eq!(plain, checked);
    }

    #[test]
    fn checked_driver_reports_divergence() {
        // The right-hand side turns into NaN halfway through.
        let sys = FnSystem::new(1, |t, y, dy| {
            dy[0] = if t > 0.5 { f64::NAN } else { -y[0] };
        });
        let err = solve_fixed_checked(&sys, &mut Euler::new(1), 0.0, &[1.0], 1.0, 0.1)
            .unwrap_err();
        match err {
            crate::error::Error::NonFiniteState { t } => assert!(t > 0.5 && t <= 1.0),
            other => panic!("expected NonFiniteState, got {other:?}"),
        }
    }

    #[test]
    fn checked_driver_reports_blowup_to_infinity() {
        // y' = y^2 blows up in finite time (t = 1 for y0 = 1); a large
        // fixed step overflows to infinity quickly.
        let sys = FnSystem::new(1, |_t, y, dy| dy[0] = y[0] * y[0]);
        let result = solve_fixed_checked(&sys, &mut Euler::new(1), 0.0, &[1e150], 5.0, 1.0);
        assert!(matches!(
            result,
            Err(crate::error::Error::NonFiniteState { .. })
        ));
    }

    #[test]
    fn adaptive_reports_divergent_rhs() {
        // NaN derivatives from the start: the adaptive solver must fail
        // with a typed error rather than loop or return junk.
        let sys = FnSystem::new(1, |_t, _y, dy| dy[0] = f64::NAN);
        let err = solve_adaptive(&sys, 0.0, &[1.0], 1.0, 1e-6).unwrap_err();
        assert!(matches!(
            err,
            crate::error::Error::NonFiniteState { .. }
                | crate::error::Error::StepSizeUnderflow { .. }
        ));
    }

    #[test]
    fn stepper_names() {
        assert_eq!(Euler::new(1).name(), "euler");
        assert_eq!(Rk4::new(1).name(), "rk4");
    }

    #[test]
    fn fn_system_debug_nonempty() {
        let sys = decay();
        assert!(!format!("{sys:?}").is_empty());
    }
}
