//! Forward Euler — the simplest fixed-step integrator.

use super::{OdeSystem, Stepper};

/// Forward Euler stepper: `y += h * f(t, y)`.
///
/// First-order accurate. Kept mostly as a baseline for the integrator
/// ablation bench; the models default to [`super::Rk4`].
#[derive(Debug, Clone)]
pub struct Euler {
    dy: Vec<f64>,
}

impl Euler {
    /// Creates a stepper with scratch space for systems of dimension `dim`.
    pub fn new(dim: usize) -> Self {
        Euler { dy: vec![0.0; dim] }
    }
}

impl Stepper for Euler {
    fn step(&mut self, sys: &dyn OdeSystem, t: f64, y: &mut [f64], h: f64) {
        debug_assert_eq!(y.len(), self.dy.len(), "scratch dimension mismatch");
        sys.deriv(t, y, &mut self.dy);
        for (yi, di) in y.iter_mut().zip(&self.dy) {
            *yi += h * di;
        }
    }

    fn name(&self) -> &'static str {
        "euler"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ode::FnSystem;

    #[test]
    fn single_step_matches_hand_computation() {
        let sys = FnSystem::new(1, |_t, y, dy| dy[0] = 2.0 * y[0]);
        let mut e = Euler::new(1);
        let mut y = [1.0];
        e.step(&sys, 0.0, &mut y, 0.5);
        // y + h * 2y = 1 + 0.5*2 = 2
        assert_eq!(y[0], 2.0);
    }

    #[test]
    fn multi_dimensional_step() {
        let sys = FnSystem::new(2, |_t, y, dy| {
            dy[0] = y[1];
            dy[1] = -y[0];
        });
        let mut e = Euler::new(2);
        let mut y = [1.0, 0.0];
        e.step(&sys, 0.0, &mut y, 0.1);
        assert_eq!(y, [1.0, -0.1]);
    }
}
