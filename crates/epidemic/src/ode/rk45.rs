//! Adaptive Dormand–Prince 5(4) embedded Runge–Kutta pair.

use super::{OdeSystem, Solution};
use crate::error::Error;

/// Butcher tableau coefficients for Dormand–Prince RK5(4)7M.
const A: [[f64; 6]; 6] = [
    [1.0 / 5.0, 0.0, 0.0, 0.0, 0.0, 0.0],
    [3.0 / 40.0, 9.0 / 40.0, 0.0, 0.0, 0.0, 0.0],
    [44.0 / 45.0, -56.0 / 15.0, 32.0 / 9.0, 0.0, 0.0, 0.0],
    [
        19372.0 / 6561.0,
        -25360.0 / 2187.0,
        64448.0 / 6561.0,
        -212.0 / 729.0,
        0.0,
        0.0,
    ],
    [
        9017.0 / 3168.0,
        -355.0 / 33.0,
        46732.0 / 5247.0,
        49.0 / 176.0,
        -5103.0 / 18656.0,
        0.0,
    ],
    [
        35.0 / 384.0,
        0.0,
        500.0 / 1113.0,
        125.0 / 192.0,
        -2187.0 / 6784.0,
        11.0 / 84.0,
    ],
];
const C: [f64; 6] = [1.0 / 5.0, 3.0 / 10.0, 4.0 / 5.0, 8.0 / 9.0, 1.0, 1.0];
/// 5th-order solution weights.
const B5: [f64; 7] = [
    35.0 / 384.0,
    0.0,
    500.0 / 1113.0,
    125.0 / 192.0,
    -2187.0 / 6784.0,
    11.0 / 84.0,
    0.0,
];
/// 4th-order embedded solution weights.
const B4: [f64; 7] = [
    5179.0 / 57600.0,
    0.0,
    7571.0 / 16695.0,
    393.0 / 640.0,
    -92097.0 / 339200.0,
    187.0 / 2100.0,
    1.0 / 40.0,
];

/// Adaptive Dormand–Prince 5(4) integrator with a standard PI-free step
/// controller.
///
/// Used by the figure harness when a model has a near-discontinuous
/// right-hand side (the hub model's regime switch, the immunization
/// model's delay) where a fixed step would need to be very small
/// everywhere.
#[derive(Debug, Clone)]
pub struct DormandPrince {
    k: [Vec<f64>; 7],
    tmp: Vec<f64>,
    y4: Vec<f64>,
}

impl DormandPrince {
    /// Minimum step size relative to the integration interval.
    const MIN_STEP_FRACTION: f64 = 1e-12;

    /// Creates an integrator with scratch space for dimension `dim`.
    pub fn new(dim: usize) -> Self {
        DormandPrince {
            k: std::array::from_fn(|_| vec![0.0; dim]),
            tmp: vec![0.0; dim],
            y4: vec![0.0; dim],
        }
    }

    /// Integrates from `t0` to `t1` with local tolerance `tol`, recording
    /// every accepted step.
    ///
    /// # Errors
    ///
    /// Returns [`Error::StepSizeUnderflow`] when the step controller
    /// cannot satisfy `tol` even at the minimum allowed step size, and
    /// [`Error::NonFiniteState`] when the system produces NaN or
    /// infinite values (divergence or an ill-defined right-hand side).
    #[allow(clippy::needless_range_loop)] // multi-array stencil math reads better indexed
    pub fn solve(
        &mut self,
        sys: &dyn OdeSystem,
        t0: f64,
        y0: &[f64],
        t1: f64,
        tol: f64,
    ) -> Result<Solution, Error> {
        let n = sys.dim();
        assert_eq!(y0.len(), n, "initial state has wrong dimension");
        let interval = t1 - t0;
        let mut t = t0;
        let mut y = y0.to_vec();
        let mut h = (interval / 100.0).max(f64::MIN_POSITIVE);
        let h_min = interval * Self::MIN_STEP_FRACTION;

        let mut times = vec![t];
        let mut states = vec![y.clone()];

        while t < t1 {
            h = h.min(t1 - t);
            // Evaluate the seven stages.
            sys.deriv(t, &y, &mut self.k[0]);
            for stage in 0..6 {
                for i in 0..n {
                    let mut acc = 0.0;
                    for (j, a) in A[stage].iter().enumerate().take(stage + 1) {
                        acc += a * self.k[j][i];
                    }
                    self.tmp[i] = y[i] + h * acc;
                }
                sys.deriv(t + C[stage] * h, &self.tmp, &mut self.k[stage + 1]);
            }
            // 5th- and 4th-order candidate solutions.
            let mut err_norm = 0.0f64;
            for i in 0..n {
                let mut y5 = y[i];
                let mut y4 = y[i];
                for j in 0..7 {
                    y5 += h * B5[j] * self.k[j][i];
                    y4 += h * B4[j] * self.k[j][i];
                }
                self.tmp[i] = y5;
                self.y4[i] = y4;
                let scale = tol * (1.0 + y[i].abs());
                err_norm = err_norm.max(((y5 - y4) / scale).abs());
            }

            // Divergence guard: a NaN error norm (NaN derivatives, or an
            // inf-minus-inf candidate) compares false against every
            // threshold and would otherwise poison every later step. An
            // *infinite* norm is left to the controller — shrinking the
            // step may legitimately recover from it.
            if err_norm.is_nan() {
                return Err(Error::NonFiniteState { t });
            }

            if err_norm <= 1.0 {
                if self.tmp.iter().any(|v| !v.is_finite()) {
                    return Err(Error::NonFiniteState { t });
                }
                // Accept.
                t += h;
                y.copy_from_slice(&self.tmp);
                times.push(t);
                states.push(y.clone());
            }

            // Step-size update (clamped growth/shrink).
            let factor = if err_norm > 0.0 {
                (0.9 * err_norm.powf(-0.2)).clamp(0.2, 5.0)
            } else {
                5.0
            };
            h *= factor;
            if h < h_min && t < t1 {
                return Err(Error::StepSizeUnderflow { t, step: h });
            }
        }

        Ok(Solution::from_parts(times, states))
    }
}

impl Solution {
    /// Assembles a solution from raw parts.
    ///
    /// # Panics
    ///
    /// Panics if `times` and `states` have different lengths.
    pub(crate) fn from_parts(times: Vec<f64>, states: Vec<Vec<f64>>) -> Self {
        assert_eq!(times.len(), states.len(), "times/states length mismatch");
        Solution { times, states }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ode::FnSystem;

    #[test]
    fn tight_tolerance_beats_loose() {
        let sys = FnSystem::new(1, |_t, y, dy| dy[0] = -y[0]);
        let exact = (-3.0f64).exp();
        let mut dp = DormandPrince::new(1);
        let loose = dp.solve(&sys, 0.0, &[1.0], 3.0, 1e-4).unwrap();
        let tight = dp.solve(&sys, 0.0, &[1.0], 3.0, 1e-12).unwrap();
        let el = (loose.last().unwrap().1[0] - exact).abs();
        let et = (tight.last().unwrap().1[0] - exact).abs();
        assert!(et <= el);
        assert!(et < 1e-9);
    }

    #[test]
    fn adapts_step_count_to_difficulty() {
        // A mildly stiff-ish fast transient then flat: adaptive should use
        // fewer steps than fixed-step at equivalent accuracy.
        let sys = FnSystem::new(1, |_t, y, dy| dy[0] = -50.0 * (y[0] - 1.0));
        let mut dp = DormandPrince::new(1);
        let sol = dp.solve(&sys, 0.0, &[0.0], 10.0, 1e-8).unwrap();
        let (_, y) = sol.last().unwrap();
        assert!((y[0] - 1.0).abs() < 1e-6);
        // Far fewer steps than the ~50/h ~ 25k a naive fixed step would take.
        assert!(sol.len() < 5000);
    }
}
