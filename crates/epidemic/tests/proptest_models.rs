//! Property-based tests on the analytical models.

use dynaquar_epidemic::backbone::BackboneRateLimit;
use dynaquar_epidemic::immunization::DelayedImmunization;
use dynaquar_epidemic::logistic::Logistic;
use dynaquar_epidemic::ode::{solve_adaptive, solve_fixed, FnSystem, Rk4};
use dynaquar_epidemic::si::HomogeneousSi;
use dynaquar_epidemic::star::HubRateLimit;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// RK4 on the SI system agrees with the logistic closed form for any
    /// valid parameter combination.
    #[test]
    fn rk4_matches_logistic_closed_form(
        n in 50.0..50_000.0f64,
        beta in 0.05..3.0f64,
        i0_frac in 0.0005..0.3f64,
    ) {
        let i0 = (n * i0_frac).max(1e-3);
        prop_assume!(i0 < n);
        let numeric = HomogeneousSi::new(n, beta, i0).unwrap().series(30.0, 0.02);
        let closed = Logistic::new(n, beta, i0).unwrap().series(0.0, 30.0, 0.02);
        prop_assert!(numeric.max_abs_difference(&closed) < 1e-4);
    }

    /// The adaptive integrator agrees with RK4 at a tight step on a
    /// parameterized linear system.
    #[test]
    fn adaptive_matches_rk4(rate in 0.1..3.0f64, y0 in 0.1..10.0f64) {
        let sys = FnSystem::new(1, move |_t, y, dy| dy[0] = -rate * y[0]);
        let fixed = solve_fixed(&sys, &mut Rk4::new(1), 0.0, &[y0], 5.0, 1e-3);
        let adaptive = solve_adaptive(&sys, 0.0, &[y0], 5.0, 1e-10).unwrap();
        let (_, yf) = fixed.last().unwrap();
        let (_, ya) = adaptive.last().unwrap();
        prop_assert!((yf[0] - ya[0]).abs() < 1e-6);
    }

    /// Hub-model trajectories are monotone, bounded, and slower than the
    /// uncapped logistic.
    #[test]
    fn hub_model_is_bounded_by_logistic(
        gamma in 0.05..1.0f64,
        cap_frac in 0.001..0.5f64,
    ) {
        let n = 300.0;
        let hub = HubRateLimit::new(n, gamma, cap_frac * n, 1.0).unwrap();
        let hub_series = hub.series(100.0, 0.1);
        let logistic = Logistic::new(n, gamma, 1.0).unwrap().series(0.0, 100.0, 0.1);
        let mut prev = 0.0;
        for ((t, h), (_, l)) in hub_series.iter().zip(logistic.iter()) {
            prop_assert!(h >= prev - 1e-12, "not monotone at t = {t}");
            prop_assert!(h <= l + 1e-9, "hub exceeds uncapped logistic at t = {t}");
            prop_assert!(h <= 1.0 + 1e-9);
            prev = h;
        }
    }

    /// Equation 6: infection time to 50% is non-decreasing in coverage α.
    #[test]
    fn backbone_slowdown_monotone_in_alpha(a1 in 0.0..0.95f64, a2 in 0.0..0.95f64) {
        let (lo, hi) = if a1 <= a2 { (a1, a2) } else { (a2, a1) };
        let t = |alpha: f64| {
            BackboneRateLimit::new(1000.0, 0.8, alpha, 0.0, 1.0)
                .unwrap()
                .time_to_fraction(0.5, 50_000.0, 1.0)
                .unwrap()
        };
        prop_assert!(t(lo) <= t(hi) + 1e-6);
    }

    /// Later immunization never reduces the total ever-infected.
    #[test]
    fn immunization_damage_monotone_in_delay(d1 in 1.0..30.0f64, d2 in 1.0..30.0f64) {
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        let m = DelayedImmunization::new(1000.0, 0.8, 0.1, 1.0).unwrap();
        let ever = |d: f64| m.ever_infected_series(d, 200.0, 0.05).final_value();
        prop_assert!(ever(lo) <= ever(hi) + 1e-6);
    }

    /// Ever-infected is always within [current infected, 1].
    #[test]
    fn immunization_fractions_consistent(
        delay in 0.0..40.0f64,
        mu in 0.01..0.5f64,
    ) {
        let m = DelayedImmunization::new(500.0, 0.8, mu, 1.0).unwrap();
        let inf = m.series(delay, 100.0, 0.05);
        let ever = m.ever_infected_series(delay, 100.0, 0.05);
        for ((t, i), (_, e)) in inf.iter().zip(ever.iter()) {
            prop_assert!(e >= i - 1e-9, "t = {t}: ever {e} < infected {i}");
            prop_assert!(e <= 1.0 + 1e-9);
            prop_assert!(i >= -1e-9);
        }
    }
}
