//! Scenario-serving daemon for the reproduction: submit worm
//! scenarios as JSON/TOML specs, run them as crash-safe checkpointed
//! jobs on a long-lived worker pool, stream the JSONL event feed to
//! any number of subscribers, and fork checkpointed runs under
//! modified defenses for interactive what-if queries.
//!
//! The layer stack:
//!
//! * [`daemon::Daemon`] — transport-free core: validation
//!   ([`dynaquar_core::spec`]), scheduling
//!   ([`dynaquar_parallel::JobPool`]), checkpointing
//!   ([`dynaquar_netsim::Snapshot`]), streaming
//!   ([`dynaquar_netsim::TickFeed`]), ledger recovery;
//! * [`protocol`] — the newline-delimited JSON verbs;
//! * [`server`] / [`client`] — Unix-domain or TCP transport, thread
//!   per connection, no async runtime;
//! * [`smoke`] — the self-checking end-to-end run CI executes.
//!
//! The daemon adds *no* nondeterminism: a served result equals a
//! direct [`Simulator`](dynaquar_netsim::Simulator) run of the same
//! spec, and a prompt subscriber's stream is byte-identical to the
//! contiguous [`JsonlEventWriter`](dynaquar_netsim::JsonlEventWriter)
//! feed — the black-box suite in `tests/serve_equivalence.rs` pins
//! both, and the kill/restart suite pins that crash recovery preserves
//! them.
//!
//! # Example
//!
//! ```
//! use dynaquar_core::spec::parse_json;
//! use dynaquar_serve::daemon::{Daemon, ServeConfig};
//!
//! let state = std::env::temp_dir().join(format!("dq-serve-doc-{}", std::process::id()));
//! let daemon = Daemon::open(ServeConfig::new(&state)).unwrap();
//! let spec = parse_json(
//!     r#"{"topology": {"kind": "star", "leaves": 30},
//!         "beta": 0.8, "horizon": 15, "initial_infected": 1, "runs": 1, "seed": 3}"#,
//! )
//! .unwrap();
//! let job = daemon.submit(&spec, None).unwrap();
//! daemon.wait(&job).unwrap();
//! assert!(daemon.result_json(&job).unwrap().contains("delivered_packets"));
//! daemon.shutdown();
//! std::fs::remove_dir_all(&state).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod client;
pub mod codec;
pub mod daemon;
pub mod error;
pub mod job;
pub mod protocol;
pub mod server;
pub mod smoke;

pub use client::{Client, ClientError};
pub use codec::{result_to_json, result_to_value};
pub use daemon::{deep_merge, Daemon, RecoveryNote, ServeConfig};
pub use error::ServeError;
pub use job::{pump_stream, JobDir, JobMeta, JobStatus, PumpStats, StreamMsg};
pub use protocol::{handle_line, Reply};
pub use server::{Server, ServerAddr};
