//! Canonical JSON encoding of [`SimResult`] for the wire protocol and
//! the job ledger's `result.json`.
//!
//! The encoding is deterministic — fixed key order, exact float
//! round-trip via the spec emitter's shortest-representation formatting
//! — so two equal results (`SimResult::eq`, which ignores wall-clock
//! phase timings) always encode to byte-identical JSON. The black-box
//! equivalence suite leans on exactly that: a daemon-served result must
//! match a direct in-process run byte for byte.

use dynaquar_core::spec::{emit_json, Value};
use dynaquar_epidemic::TimeSeries;
use dynaquar_netsim::metrics::KindCounts;
use dynaquar_netsim::sim::SimResult;

fn uint(x: u64) -> Value {
    // Counters far exceeding i64 are unreachable in practice, but the
    // codec must stay total: overflow degrades to a decimal string
    // rather than wrapping or panicking.
    match i64::try_from(x) {
        Ok(i) => Value::Int(i),
        Err(_) => Value::Str(x.to_string()),
    }
}

fn series(s: &TimeSeries) -> Value {
    Value::Array(
        s.iter()
            .map(|(t, v)| Value::Array(vec![Value::Float(t), Value::Float(v)]))
            .collect(),
    )
}

fn kind_counts(k: &KindCounts) -> Value {
    Value::Object(vec![
        ("emitted".into(), uint(k.emitted)),
        ("filtered".into(), uint(k.filtered)),
        ("delayed".into(), uint(k.delayed)),
        ("released".into(), uint(k.released)),
        ("cleared".into(), uint(k.cleared)),
        ("forwarded".into(), uint(k.forwarded)),
        ("delivered".into(), uint(k.delivered)),
        ("lost".into(), uint(k.lost)),
        ("unroutable".into(), uint(k.unroutable)),
        ("stalled_on_cap".into(), uint(k.stalled_on_cap)),
        ("stalled_on_outage".into(), uint(k.stalled_on_outage)),
        ("in_flight_at_end".into(), uint(k.in_flight_at_end)),
        ("queued_at_end".into(), uint(k.queued_at_end)),
    ])
}

/// Encodes every simulated field of a [`SimResult`] — exactly the
/// fields its `PartialEq` compares; the observational phase profile is
/// deliberately left out.
pub fn result_to_value(r: &SimResult) -> Value {
    Value::Object(vec![
        ("infected_fraction".into(), series(&r.infected_fraction)),
        (
            "ever_infected_fraction".into(),
            series(&r.ever_infected_fraction),
        ),
        ("immunized_fraction".into(), series(&r.immunized_fraction)),
        ("backlog".into(), series(&r.backlog)),
        ("delivered_packets".into(), uint(r.delivered_packets)),
        ("filtered_packets".into(), uint(r.filtered_packets)),
        ("delayed_packets".into(), uint(r.delayed_packets)),
        ("quarantined_hosts".into(), uint(r.quarantined_hosts)),
        (
            "false_quarantined_hosts".into(),
            uint(r.false_quarantined_hosts),
        ),
        ("lost_packets".into(), uint(r.lost_packets)),
        (
            "scan_log".into(),
            Value::Array(
                r.scan_log
                    .iter()
                    .map(|&(tick, scanner, target)| {
                        Value::Array(vec![
                            uint(tick),
                            uint(scanner.index() as u64),
                            uint(target.index() as u64),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("residual_packets".into(), uint(r.residual_packets)),
        (
            "background".into(),
            Value::Object(vec![
                ("injected".into(), uint(r.background.injected)),
                ("delivered".into(), uint(r.background.delivered)),
                (
                    "total_delay_ticks".into(),
                    uint(r.background.total_delay_ticks),
                ),
                ("max_delay_ticks".into(), uint(r.background.max_delay_ticks)),
                ("total_hops".into(), uint(r.background.total_hops)),
            ]),
        ),
        (
            "accounting".into(),
            Value::Object(vec![
                ("worm".into(), kind_counts(&r.accounting.worm)),
                ("background".into(), kind_counts(&r.accounting.background)),
            ]),
        ),
    ])
}

/// [`result_to_value`] rendered as one JSON document.
pub fn result_to_json(r: &SimResult) -> String {
    emit_json(&result_to_value(r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynaquar_netsim::config::{SimConfig, WormBehavior};
    use dynaquar_netsim::sim::Simulator;
    use dynaquar_netsim::World;
    use dynaquar_topology::generators;

    fn small_result() -> SimResult {
        let w = World::from_star(generators::star(19).unwrap());
        let cfg = SimConfig::builder()
            .beta(0.8)
            .horizon(10)
            .initial_infected(1)
            .build()
            .unwrap();
        Simulator::new(&w, &cfg, WormBehavior::random(), 5).run()
    }

    #[test]
    fn equal_results_encode_to_identical_bytes() {
        let a = small_result();
        let b = small_result();
        assert_eq!(a, b, "determinism precondition");
        assert_eq!(result_to_json(&a), result_to_json(&b));
    }

    #[test]
    fn encoding_parses_back_as_json_and_keeps_scalars() {
        let r = small_result();
        let text = result_to_json(&r);
        let v = dynaquar_core::spec::parse_json(&text).expect("codec emits valid JSON");
        assert_eq!(
            v.get("delivered_packets").and_then(Value::as_int),
            Some(r.delivered_packets as i64)
        );
        let worm = v.get("accounting").and_then(|a| a.get("worm")).unwrap();
        assert_eq!(
            worm.get("emitted").and_then(Value::as_int),
            Some(r.accounting.worm.emitted as i64)
        );
        match v.get("infected_fraction") {
            Some(Value::Array(points)) => assert_eq!(points.len(), r.infected_fraction.len()),
            other => panic!("infected_fraction must be an array, got {other:?}"),
        }
    }

    #[test]
    fn overflowing_counter_degrades_to_a_string() {
        assert_eq!(uint(u64::MAX), Value::Str(u64::MAX.to_string()));
        assert_eq!(uint(7), Value::Int(7));
    }
}
