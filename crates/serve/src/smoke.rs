//! The self-checking end-to-end run the CI daemon leg executes:
//! start a daemon on a Unix socket, submit a 500-host world, stream
//! it to two subscribers, verify both streams and the result against
//! a direct in-process run, fork it, and shut down cleanly.

use crate::client::Client;
use crate::daemon::{Daemon, ServeConfig};
use crate::server::{Server, ServerAddr};
use dynaquar_core::spec::{parse_json, scenario_from_value, Value};
use dynaquar_netsim::sim::Simulator;
use dynaquar_netsim::JsonlEventWriter;
use std::time::Duration;

/// The smoke scenario: `hosts` star leaves under the paper's dynamic
/// quarantine defense.
pub fn smoke_spec(hosts: usize) -> Value {
    parse_json(&format!(
        r#"{{
            "topology": {{"kind": "star", "leaves": {hosts}}},
            "beta": 0.8,
            "horizon": 120,
            "initial_infected": 2,
            "deployment": {{"hosts": 1.0}},
            "params": {{"host_window_ticks": 200, "host_max_new_targets": 1,
                        "host_release_period_ticks": 10}},
            "quarantine": {{"queue_threshold": 3}},
            "runs": 1,
            "seed": 21
        }}"#
    ))
    .expect("smoke spec is valid JSON")
}

/// Runs the smoke end to end. Returns a human-readable summary on
/// success and the failing check's description on failure.
pub fn run_smoke(hosts: usize, subscribers: usize) -> Result<String, String> {
    let state = std::env::temp_dir().join(format!("dynaquar-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state);
    let sock = state.join("serve.sock");
    let outcome = smoke_inner(&state, &sock, hosts, subscribers);
    let _ = std::fs::remove_dir_all(&state);
    outcome
}

fn smoke_inner(
    state: &std::path::Path,
    sock: &std::path::Path,
    hosts: usize,
    subscribers: usize,
) -> Result<String, String> {
    let spec = smoke_spec(hosts);

    // Reference: a direct in-process run of the same spec.
    let scenario = scenario_from_value(&spec).map_err(|e| format!("spec rejected: {e}"))?;
    let world = scenario.build_world();
    let config = scenario.sim_config_for(&world);
    let sim = Simulator::try_new(&world, &config, scenario.worm_behavior(), scenario.base_seed())
        .map_err(|e| format!("engine refused the smoke spec: {e}"))?;
    let mut writer = JsonlEventWriter::new(Vec::new());
    let reference_result = sim.run_observed(&mut writer);
    let reference_stream = writer
        .finish()
        .map_err(|e| format!("reference stream failed: {e}"))?;
    let reference_json = crate::codec::result_to_json(&reference_result);

    // The daemon under test, on a real Unix socket.
    let daemon = Daemon::open(ServeConfig::new(state)).map_err(|e| format!("open failed: {e}"))?;
    let server = Server::bind(daemon, ServerAddr::Unix(sock.to_path_buf()))
        .map_err(|e| format!("bind failed: {e}"))?;
    let addr = server.addr().clone();
    let server_thread = std::thread::spawn(move || server.run());

    let mut client = Client::connect_retry(&addr, Duration::from_secs(10))
        .map_err(|e| format!("connect failed: {e}"))?;
    client.ping().map_err(|e| format!("ping failed: {e}"))?;
    let job = client
        .submit(&spec, Some(25))
        .map_err(|e| format!("submit failed: {e}"))?;

    // Fan the stream out to N concurrent subscribers.
    let mut subs = Vec::new();
    for i in 0..subscribers {
        let sub = Client::connect_retry(&addr, Duration::from_secs(10))
            .map_err(|e| format!("subscriber {i} connect failed: {e}"))?;
        let job = job.clone();
        subs.push(std::thread::spawn(move || sub.subscribe_collect(&job)));
    }

    client
        .wait(&job)
        .map_err(|e| format!("wait failed: {e}"))?;
    let served = client
        .result(&job)
        .map_err(|e| format!("result failed: {e}"))?;
    let served_json = dynaquar_core::spec::emit_json(&served);
    if served_json != reference_json {
        return Err("served result diverged from the direct run".into());
    }

    for (i, sub) in subs.into_iter().enumerate() {
        let bytes = sub
            .join()
            .map_err(|_| format!("subscriber {i} panicked"))?
            .map_err(|e| format!("subscriber {i} failed: {e}"))?;
        if bytes != reference_stream {
            return Err(format!(
                "subscriber {i} stream diverged ({} vs {} bytes)",
                bytes.len(),
                reference_stream.len()
            ));
        }
    }

    // A quick what-if fork: earlier quarantine trigger, from tick 50.
    let overrides = parse_json(r#"{"quarantine": {"queue_threshold": 2}}"#).unwrap();
    let forked = client
        .fork(&job, Some(50), &overrides)
        .map_err(|e| format!("fork failed: {e}"))?;
    let fork_id = forked
        .get("job")
        .and_then(Value::as_str)
        .ok_or("fork reply has no job id")?
        .to_string();
    client
        .wait(&fork_id)
        .map_err(|e| format!("fork wait failed: {e}"))?;

    client
        .shutdown()
        .map_err(|e| format!("shutdown failed: {e}"))?;
    server_thread
        .join()
        .map_err(|_| "server thread panicked".to_string())?
        .map_err(|e| format!("server exited with: {e}"))?;

    Ok(format!(
        "smoke ok: {hosts}-host world served over {addr:?}; {subscribers} subscribers \
         byte-identical ({} bytes each); result matches the direct run; fork {fork_id} completed",
        reference_stream.len()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_ci_smoke_passes_in_process() {
        // CI runs 500 hosts via the binary; the unit test keeps the
        // same path hot at a smaller size.
        let summary = run_smoke(120, 2).expect("smoke must pass");
        assert!(summary.contains("smoke ok"), "{summary}");
    }
}
