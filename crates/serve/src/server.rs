//! Socket transport for the daemon: Unix-domain or TCP, thread per
//! connection, std-only (no async runtime).
//!
//! The listener polls in non-blocking mode so a `shutdown` verb can
//! stop the accept loop; connection readers use short read timeouts
//! for the same reason. Each connection speaks the
//! [`crate::protocol`] line protocol; a `subscribe` switches the
//! connection to raw streaming until the job completes, after which
//! the server closes it.

use crate::daemon::Daemon;
use crate::job::pump_stream;
use crate::protocol::{handle_line, Reply};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Where the daemon listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerAddr {
    /// A Unix-domain socket at this path.
    Unix(PathBuf),
    /// A TCP address, e.g. `127.0.0.1:7411` (`:0` for an ephemeral
    /// port — read the bound address back from [`Server::addr`]).
    Tcp(String),
}

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

enum Conn {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Conn {
    fn try_clone(&self) -> std::io::Result<Conn> {
        Ok(match self {
            Conn::Unix(s) => Conn::Unix(s.try_clone()?),
            Conn::Tcp(s) => Conn::Tcp(s.try_clone()?),
        })
    }

    fn set_read_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        match self {
            Conn::Unix(s) => s.set_read_timeout(dur),
            Conn::Tcp(s) => s.set_read_timeout(dur),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Unix(s) => s.read(buf),
            Conn::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Unix(s) => s.write(buf),
            Conn::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Unix(s) => s.flush(),
            Conn::Tcp(s) => s.flush(),
        }
    }
}

/// A running socket front-end over a [`Daemon`].
pub struct Server {
    daemon: Daemon,
    listener: Listener,
    addr: ServerAddr,
    shutdown: Arc<AtomicBool>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("addr", &self.addr).finish()
    }
}

impl Server {
    /// Binds the listener. A stale Unix socket file from a dead
    /// process is removed first; for TCP the resolved address
    /// (ephemeral port filled in) is readable via [`Server::addr`].
    pub fn bind(daemon: Daemon, addr: ServerAddr) -> std::io::Result<Server> {
        let (listener, addr) = match addr {
            ServerAddr::Unix(path) => {
                let _ = std::fs::remove_file(&path);
                let l = UnixListener::bind(&path)?;
                l.set_nonblocking(true)?;
                (Listener::Unix(l), ServerAddr::Unix(path))
            }
            ServerAddr::Tcp(spec) => {
                let l = TcpListener::bind(&spec)?;
                l.set_nonblocking(true)?;
                let bound = l.local_addr()?.to_string();
                (Listener::Tcp(l), ServerAddr::Tcp(bound))
            }
        };
        Ok(Server {
            daemon,
            listener,
            addr,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> &ServerAddr {
        &self.addr
    }

    /// A handle that makes [`Server::run`] return (used by embedders;
    /// the protocol's `shutdown` verb does the same from the wire).
    pub fn shutdown_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Serves connections until a `shutdown` verb arrives (or the
    /// shutdown handle is set), then drains the daemon's jobs, joins
    /// the connection threads, and returns.
    pub fn run(self) -> std::io::Result<()> {
        let mut handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !self.shutdown.load(Ordering::Acquire) {
            let accepted = match &self.listener {
                Listener::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
                Listener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
            };
            match accepted {
                Ok(conn) => {
                    let daemon = self.daemon.clone();
                    let shutdown = Arc::clone(&self.shutdown);
                    handles.push(std::thread::spawn(move || {
                        let _ = serve_connection(&daemon, conn, &shutdown);
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(e) => return Err(e),
            }
            handles.retain(|h| !h.is_finished());
        }
        // Drain every queued and running job, which also completes all
        // subscriber streams, so streaming connections finish on their
        // own; request connections notice the flag on their next read
        // timeout.
        self.daemon.shutdown();
        for h in handles {
            let _ = h.join();
        }
        if let ServerAddr::Unix(path) = &self.addr {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }
}

/// Reads one `\n`-terminated line, tolerating read timeouts (used to
/// poll the shutdown flag). Returns `Ok(false)` on EOF or shutdown.
fn read_request_line(
    reader: &mut BufReader<Conn>,
    line: &mut String,
    shutdown: &AtomicBool,
) -> std::io::Result<bool> {
    line.clear();
    loop {
        match reader.read_line(line) {
            // read_line only returns Ok once it saw the newline or hit
            // EOF, so any non-empty read is a complete request.
            Ok(0) => return Ok(false),
            Ok(_) => return Ok(true),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // A timeout mid-line keeps the partial bytes in `line`;
                // keep accumulating unless the server is going down.
                if shutdown.load(Ordering::Acquire) {
                    return Ok(false);
                }
            }
            Err(e) => return Err(e),
        }
    }
}

fn serve_connection(
    daemon: &Daemon,
    conn: Conn,
    shutdown: &Arc<AtomicBool>,
) -> std::io::Result<()> {
    conn.set_read_timeout(Some(Duration::from_millis(200)))?;
    let mut writer = conn.try_clone()?;
    let mut reader = BufReader::new(conn);
    let mut line = String::new();
    while read_request_line(&mut reader, &mut line, shutdown)? {
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            continue;
        }
        match handle_line(daemon, trimmed) {
            Reply::Line(text) => {
                writer.write_all(text.as_bytes())?;
                writer.write_all(b"\n")?;
                writer.flush()?;
            }
            Reply::Stream { ack, rx } => {
                writer.write_all(ack.as_bytes())?;
                writer.write_all(b"\n")?;
                writer.flush()?;
                let _ = pump_stream(rx, &mut writer);
                return Ok(());
            }
            Reply::Shutdown { ack } => {
                writer.write_all(ack.as_bytes())?;
                writer.write_all(b"\n")?;
                writer.flush()?;
                shutdown.store(true, Ordering::Release);
                return Ok(());
            }
        }
    }
    Ok(())
}
