//! A small blocking client for the daemon's line protocol — what the
//! CLI, the smoke check, and the black-box test suites use to talk to
//! a real socket.

use crate::server::ServerAddr;
use dynaquar_core::spec::{emit_json, parse_json, Value};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::time::{Duration, Instant};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The daemon answered with a protocol error line.
    Server {
        /// `error.kind` from the wire.
        kind: String,
        /// `error.message` from the wire.
        message: String,
    },
    /// The daemon's reply was not a valid protocol line.
    Malformed(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Server { kind, message } => write!(f, "server error ({kind}): {message}"),
            ClientError::Malformed(what) => write!(f, "malformed reply: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// One protocol connection. A `subscribe` consumes the connection
/// (the server closes it when the stream ends); open one client per
/// subscription.
pub struct Client {
    reader: BufReader<Stream>,
    writer: Stream,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Client")
    }
}

impl Client {
    /// Connects once.
    pub fn connect(addr: &ServerAddr) -> std::io::Result<Client> {
        let (reader, writer) = match addr {
            ServerAddr::Unix(path) => {
                let s = UnixStream::connect(path)?;
                (Stream::Unix(s.try_clone()?), Stream::Unix(s))
            }
            ServerAddr::Tcp(spec) => {
                let s = TcpStream::connect(spec)?;
                (Stream::Tcp(s.try_clone()?), Stream::Tcp(s))
            }
        };
        Ok(Client {
            reader: BufReader::new(reader),
            writer,
        })
    }

    /// Polls [`Client::connect`] until the daemon answers or the
    /// timeout elapses — the standard way to wait for a freshly
    /// spawned daemon process to come up.
    pub fn connect_retry(addr: &ServerAddr, timeout: Duration) -> std::io::Result<Client> {
        let deadline = Instant::now() + timeout;
        loop {
            match Client::connect(addr) {
                Ok(client) => return Ok(client),
                Err(e) => {
                    if Instant::now() >= deadline {
                        return Err(e);
                    }
                    std::thread::sleep(Duration::from_millis(25));
                }
            }
        }
    }

    /// Sends one request document and reads the reply line. Error
    /// lines come back as [`ClientError::Server`].
    pub fn request(&mut self, req: &Value) -> Result<Value, ClientError> {
        self.writer.write_all(emit_json(req).as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Malformed("connection closed mid-request".into()));
        }
        let reply = parse_json(line.trim_end())
            .map_err(|e| ClientError::Malformed(format!("reply does not parse: {e}")))?;
        match reply.get("ok") {
            Some(Value::Bool(true)) => Ok(reply),
            Some(Value::Bool(false)) => {
                let kind = reply
                    .get("error")
                    .and_then(|e| e.get("kind"))
                    .and_then(Value::as_str)
                    .unwrap_or("unknown")
                    .to_string();
                let message = reply
                    .get("error")
                    .and_then(|e| e.get("message"))
                    .and_then(Value::as_str)
                    .unwrap_or("")
                    .to_string();
                Err(ClientError::Server { kind, message })
            }
            _ => Err(ClientError::Malformed("reply has no `ok` field".into())),
        }
    }

    fn simple(&mut self, fields: Vec<(String, Value)>) -> Result<Value, ClientError> {
        self.request(&Value::Object(fields))
    }

    /// `ping`.
    pub fn ping(&mut self) -> Result<Value, ClientError> {
        self.simple(vec![("cmd".into(), Value::Str("ping".into()))])
    }

    /// Submits a spec document; returns the job id.
    pub fn submit(
        &mut self,
        spec: &Value,
        checkpoint_every: Option<u64>,
    ) -> Result<String, ClientError> {
        let mut fields = vec![
            ("cmd".into(), Value::Str("submit".into())),
            ("spec".into(), spec.clone()),
        ];
        if let Some(every) = checkpoint_every {
            fields.push(("checkpoint_every".into(), Value::Int(every as i64)));
        }
        let reply = self.simple(fields)?;
        reply
            .get("job")
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| ClientError::Malformed("submit reply has no job id".into()))
    }

    /// `status` for one job.
    pub fn status(&mut self, job: &str) -> Result<Value, ClientError> {
        self.simple(vec![
            ("cmd".into(), Value::Str("status".into())),
            ("job".into(), Value::Str(job.into())),
        ])
    }

    /// Blocks until the job finishes; returns its final status
    /// document (failures come back as [`ClientError::Server`] with
    /// kind `job_failed`).
    pub fn wait(&mut self, job: &str) -> Result<Value, ClientError> {
        self.simple(vec![
            ("cmd".into(), Value::Str("wait".into())),
            ("job".into(), Value::Str(job.into())),
        ])
    }

    /// The result document of a completed job.
    pub fn result(&mut self, job: &str) -> Result<Value, ClientError> {
        let reply = self.simple(vec![
            ("cmd".into(), Value::Str("result".into())),
            ("job".into(), Value::Str(job.into())),
        ])?;
        reply
            .get("result")
            .cloned()
            .ok_or_else(|| ClientError::Malformed("result reply has no result".into()))
    }

    /// Forks a checkpointed job; returns the new job's status document.
    pub fn fork(
        &mut self,
        job: &str,
        at_tick: Option<u64>,
        overrides: &Value,
    ) -> Result<Value, ClientError> {
        let mut fields = vec![
            ("cmd".into(), Value::Str("fork".into())),
            ("job".into(), Value::Str(job.into())),
            ("spec".into(), overrides.clone()),
        ];
        if let Some(t) = at_tick {
            fields.push(("at_tick".into(), Value::Int(t as i64)));
        }
        self.simple(fields)
    }

    /// Asks the daemon to shut down (it drains running jobs first).
    pub fn shutdown(&mut self) -> Result<Value, ClientError> {
        self.simple(vec![("cmd".into(), Value::Str("shutdown".into()))])
    }

    /// Subscribes to a job's event stream and reads it to the end,
    /// consuming the connection. Returns the raw stream bytes exactly
    /// as the daemon sent them.
    pub fn subscribe_collect(mut self, job: &str) -> Result<Vec<u8>, ClientError> {
        self.request(&Value::Object(vec![
            ("cmd".into(), Value::Str("subscribe".into())),
            ("job".into(), Value::Str(job.into())),
        ]))?;
        let mut bytes = Vec::new();
        self.reader.read_to_end(&mut bytes)?;
        Ok(bytes)
    }
}
