//! The daemon core: job registry, scheduling, checkpointing, crash
//! recovery, and fork-at-tick.
//!
//! [`Daemon`] is transport-free — the socket server
//! ([`crate::server`]) and the in-process test harness drive the same
//! object, so the black-box equivalence suite can pin daemon behaviour
//! without a socket in the loop.
//!
//! # Determinism
//!
//! A job is one seeded [`Simulator`] run. The daemon adds scheduling
//! (the [`JobPool`]), checkpointing, and streaming around it — none of
//! which may change what the run computes. Concretely:
//!
//! * results are produced by the same `run_until`/`finish` path the
//!   engine's checkpoint suite pins, so a daemon-served `SimResult`
//!   equals a direct run's;
//! * the event stream is produced by a [`TickFeed`], whose per-tick
//!   blocks concatenate to exactly the contiguous
//!   [`JsonlEventWriter`](dynaquar_netsim::JsonlEventWriter) stream;
//! * a resumed job truncates `events.jsonl` to the stream length
//!   recorded at its checkpoint and re-produces the identical suffix.

use crate::codec::result_to_json;
use crate::error::{io_err, ServeError};
use crate::job::{
    write_atomic, ForkOrigin, JobDir, JobMeta, JobShared, JobStatus, StreamMsg,
};
use dynaquar_core::spec::{scenario_from_value, scenario_to_value, Value};
use dynaquar_core::Scenario;
use dynaquar_netsim::metrics::TickFeed;
use dynaquar_netsim::sim::{SimResult, Simulator};
use dynaquar_netsim::Snapshot;
use dynaquar_parallel::{JobPool, ParallelConfig};
use std::collections::BTreeMap;
use std::io::Write;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::{Arc, Mutex};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Directory holding the job ledger; created if absent.
    pub state_dir: PathBuf,
    /// Worker threads executing jobs.
    pub workers: ParallelConfig,
    /// Default checkpoint cadence for jobs that do not specify one.
    /// `None` disables checkpointing by default.
    pub checkpoint_every: Option<u64>,
    /// Per-subscriber live-block queue depth before blocks are dropped.
    pub subscriber_queue: usize,
}

impl ServeConfig {
    /// A config with the given state dir, workers from
    /// `DYNAQUAR_THREADS`, no default checkpointing, and a
    /// 256-block subscriber queue.
    pub fn new(state_dir: impl Into<PathBuf>) -> Self {
        ServeConfig {
            state_dir: state_dir.into(),
            workers: ParallelConfig::from_env(),
            checkpoint_every: None,
            subscriber_queue: 256,
        }
    }
}

/// What recovery did to one job on daemon start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryNote {
    /// The job.
    pub job: String,
    /// What happened (resumed from tick N, fresh restart, failed).
    pub note: String,
}

struct JobEntry {
    id: String,
    dir: JobDir,
    scenario: Option<Scenario>,
    spec: Option<Value>,
    checkpoint_every: Option<u64>,
    forked_from: Option<ForkOrigin>,
    shared: Arc<JobShared>,
}

struct DaemonInner {
    jobs_dir: PathBuf,
    subscriber_queue: usize,
    default_every: Option<u64>,
    next_id: AtomicU64,
    registry: Mutex<BTreeMap<String, Arc<JobEntry>>>,
    pool: Mutex<Option<JobPool>>,
    recovery: Mutex<Vec<RecoveryNote>>,
}

/// The scenario-serving daemon. Cheap to clone (a handle).
#[derive(Clone)]
pub struct Daemon {
    inner: Arc<DaemonInner>,
}

impl std::fmt::Debug for Daemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Daemon")
            .field("jobs_dir", &self.inner.jobs_dir)
            .finish()
    }
}

/// How a job's simulator is (re)started.
enum StartMode {
    /// From tick 0.
    Fresh,
    /// From a checkpoint of the *same* config (crash recovery): the
    /// strict fingerprint-checked resume.
    Resume(Snapshot),
    /// From a checkpoint under a possibly modified config (fork).
    Fork(Snapshot),
}

impl Daemon {
    /// Opens (or creates) the state directory, recovers the job ledger,
    /// and re-enqueues every job that was queued or running when the
    /// previous process died. Corruption anywhere in the ledger
    /// degrades — typed notes in [`Daemon::recovery_notes`], fresh
    /// deterministic re-runs where the spec survives — and never
    /// panics.
    pub fn open(config: ServeConfig) -> Result<Self, ServeError> {
        let jobs_dir = config.state_dir.join("jobs");
        std::fs::create_dir_all(&jobs_dir).map_err(io_err("creating the jobs directory"))?;
        let daemon = Daemon {
            inner: Arc::new(DaemonInner {
                jobs_dir,
                subscriber_queue: config.subscriber_queue,
                default_every: config.checkpoint_every,
                next_id: AtomicU64::new(1),
                registry: Mutex::new(BTreeMap::new()),
                pool: Mutex::new(Some(JobPool::new(&config.workers))),
                recovery: Mutex::new(Vec::new()),
            }),
        };
        daemon.recover()?;
        Ok(daemon)
    }

    /// What recovery did on [`Daemon::open`], one note per touched job.
    pub fn recovery_notes(&self) -> Vec<RecoveryNote> {
        self.inner.recovery.lock().unwrap().clone()
    }

    /// Worker threads serving jobs.
    pub fn workers(&self) -> usize {
        self.inner
            .pool
            .lock()
            .unwrap()
            .as_ref()
            .map_or(0, JobPool::threads)
    }

    /// Jobs completed / panicked since this process started.
    pub fn pool_stats(&self) -> (u64, u64) {
        let guard = self.inner.pool.lock().unwrap();
        match guard.as_ref() {
            Some(pool) => (pool.completed_jobs(), pool.panicked_jobs()),
            None => (0, 0),
        }
    }

    /// Graceful shutdown: stops accepting work, drains every queued
    /// and running job, joins the workers. Idempotent.
    pub fn shutdown(&self) {
        let pool = self.inner.pool.lock().unwrap().take();
        if let Some(pool) = pool {
            pool.shutdown();
        }
    }

    // -- submission ---------------------------------------------------------

    /// Validates a spec document and schedules it as a job. Returns the
    /// job id. `checkpoint_every` overrides the daemon default cadence.
    pub fn submit(
        &self,
        spec: &Value,
        checkpoint_every: Option<u64>,
    ) -> Result<String, ServeError> {
        let scenario = scenario_from_value(spec)?;
        Self::check_servable(&scenario)?;
        let canonical = scenario_to_value(&scenario)?;
        let every = match checkpoint_every {
            Some(0) => {
                return Err(ServeError::BadRequest {
                    reason: "checkpoint_every must be at least 1".into(),
                })
            }
            Some(n) => Some(n),
            None => self.inner.default_every,
        };
        let id = self.fresh_id();
        let dir = self.job_dir(&id);
        std::fs::create_dir_all(dir.root()).map_err(io_err("creating the job directory"))?;
        dir.write_spec(&canonical)?;
        let meta = JobMeta {
            id: id.clone(),
            status: JobStatus::Queued,
            checkpoint_every: every,
            forked_from: None,
        };
        dir.write_meta(&meta)?;
        let entry = Arc::new(JobEntry {
            id: id.clone(),
            dir,
            scenario: Some(scenario),
            spec: Some(canonical),
            checkpoint_every: every,
            forked_from: None,
            shared: Arc::new(JobShared::new(JobStatus::Queued)),
        });
        self.register_and_enqueue(entry, StartMode::Fresh);
        Ok(id)
    }

    /// One job is one seeded run: ensemble sweeps and engine-managed
    /// checkpointing are refused with typed errors, not silently
    /// reinterpreted.
    fn check_servable(scenario: &Scenario) -> Result<(), ServeError> {
        if scenario.run_count() != 1 {
            return Err(ServeError::Unsupported {
                what: format!(
                    "runs = {} (a job is one seeded run; submit one job per seed)",
                    scenario.run_count()
                ),
            });
        }
        if scenario.checkpoint_policy().is_some() {
            return Err(ServeError::Unsupported {
                what: "a `checkpoint` spec section (the daemon manages checkpointing; \
                       pass `checkpoint_every` on submit)"
                    .into(),
            });
        }
        Ok(())
    }

    // -- fork ---------------------------------------------------------------

    /// Re-runs a checkpointed job under a modified config: the source
    /// job's latest checkpoint at or below `at_tick` (latest overall
    /// when `None`) seeds a new job whose spec is the source spec with
    /// `overrides` deep-merged in (`null` removes a key). The new job's
    /// event stream starts as a byte-exact copy of the source stream up
    /// to the fork tick and diverges from there.
    pub fn fork(
        &self,
        source: &str,
        at_tick: Option<u64>,
        overrides: &Value,
    ) -> Result<String, ServeError> {
        let src = self.entry(source)?;
        let index = src.dir.read_index();
        let mut chosen = None;
        for (tick, path) in src.dir.checkpoints_desc() {
            if at_tick.is_some_and(|limit| tick > limit) {
                continue;
            }
            let Some(&offset) = index.get(&tick) else {
                continue;
            };
            match Snapshot::read(&path) {
                Ok(snap) => {
                    chosen = Some((snap, offset));
                    break;
                }
                Err(_) => continue,
            }
        }
        let Some((snapshot, offset)) = chosen else {
            return Err(ServeError::BadRequest {
                reason: format!(
                    "job `{source}` has no usable checkpoint{}",
                    at_tick.map_or(String::new(), |t| format!(" at or below tick {t}"))
                ),
            });
        };
        let fork_tick = snapshot.tick();

        let (src_spec, _) = match (&src.spec, &src.scenario) {
            (Some(spec), Some(sc)) => (spec.clone(), sc.clone()),
            _ => {
                let (spec, sc) = src.dir.read_spec()?;
                (spec, sc)
            }
        };
        let merged = deep_merge(&src_spec, overrides);
        let scenario = scenario_from_value(&merged)?;
        Self::check_servable(&scenario)?;
        if scenario.horizon_ticks() < fork_tick {
            return Err(ServeError::BadRequest {
                reason: format!(
                    "fork horizon {} lies before the checkpoint tick {fork_tick}",
                    scenario.horizon_ticks()
                ),
            });
        }
        let canonical = scenario_to_value(&scenario)?;

        let id = self.fresh_id();
        let dir = self.job_dir(&id);
        std::fs::create_dir_all(dir.root()).map_err(io_err("creating the fork job directory"))?;
        dir.write_spec(&canonical)?;
        // Byte-exact stream prefix up to the fork tick.
        let prefix = {
            let events = std::fs::read(src.dir.events_path())
                .map_err(io_err("reading the source event stream"))?;
            let offset = offset as usize;
            if offset > events.len() {
                return Err(ServeError::Ledger {
                    what: format!(
                        "index offset {offset} exceeds the source stream length {}",
                        events.len()
                    ),
                });
            }
            events[..offset].to_vec()
        };
        write_atomic(&dir.events_path(), &prefix)?;
        let mut fork_index = BTreeMap::new();
        fork_index.insert(fork_tick, offset);
        dir.rewrite_index(&fork_index)?;
        snapshot
            .write_atomic(&dir.checkpoint_path(fork_tick))
            .map_err(ServeError::Snapshot)?;
        let origin = ForkOrigin {
            from: source.to_string(),
            at_tick: fork_tick,
        };
        let every = src.checkpoint_every.or(self.inner.default_every);
        dir.write_meta(&JobMeta {
            id: id.clone(),
            status: JobStatus::Queued,
            checkpoint_every: every,
            forked_from: Some(origin.clone()),
        })?;
        let shared = Arc::new(JobShared::new(JobStatus::Queued));
        {
            let mut st = shared.stream.lock().unwrap();
            st.history = prefix;
            // The prefix runs through tick `fork_tick`; the resumed
            // engine's first block carries `fork_tick + 1`.
            st.next_tick = fork_tick + 1;
        }
        let entry = Arc::new(JobEntry {
            id: id.clone(),
            dir,
            scenario: Some(scenario),
            spec: Some(canonical),
            checkpoint_every: every,
            forked_from: Some(origin),
            shared,
        });
        self.register_and_enqueue(entry, StartMode::Fork(snapshot));
        Ok(id)
    }

    // -- queries ------------------------------------------------------------

    /// All job ids, in creation order.
    pub fn jobs(&self) -> Vec<String> {
        self.inner.registry.lock().unwrap().keys().cloned().collect()
    }

    /// A job's current status.
    pub fn status(&self, id: &str) -> Result<JobStatus, ServeError> {
        Ok(self.entry(id)?.shared.status.lock().unwrap().clone())
    }

    /// The status line the protocol serves: id, status, current tick,
    /// horizon, fork lineage.
    pub fn status_value(&self, id: &str) -> Result<Value, ServeError> {
        let entry = self.entry(id)?;
        let status = entry.shared.status.lock().unwrap().clone();
        let mut fields = vec![
            ("job".into(), Value::Str(entry.id.clone())),
            ("status".into(), Value::Str(status.label().into())),
            (
                "tick".into(),
                Value::Int(entry.shared.tick.load(Ordering::Acquire) as i64),
            ),
        ];
        if let Some(sc) = &entry.scenario {
            fields.push(("horizon".into(), Value::Int(sc.horizon_ticks() as i64)));
        }
        if let JobStatus::Failed { message } = &status {
            fields.push(("message".into(), Value::Str(message.clone())));
        }
        if let Some(fork) = &entry.forked_from {
            fields.push(("forked_from".into(), Value::Str(fork.from.clone())));
            fields.push(("fork_tick".into(), Value::Int(fork.at_tick as i64)));
        }
        Ok(Value::Object(fields))
    }

    /// Blocks until the job reaches a terminal state; `Ok` on `Done`,
    /// the recorded failure as [`ServeError::JobFailed`] otherwise.
    pub fn wait(&self, id: &str) -> Result<(), ServeError> {
        match self.entry(id)?.shared.wait_terminal() {
            JobStatus::Done => Ok(()),
            JobStatus::Failed { message } => Err(ServeError::JobFailed { message }),
            _ => unreachable!("wait_terminal only returns terminal states"),
        }
    }

    /// The canonical result JSON of a completed job, read from the
    /// ledger (proving persistence, not just memory).
    pub fn result_json(&self, id: &str) -> Result<String, ServeError> {
        let entry = self.entry(id)?;
        match entry.shared.status.lock().unwrap().clone() {
            JobStatus::Done => {}
            JobStatus::Failed { message } => return Err(ServeError::JobFailed { message }),
            _ => {
                return Err(ServeError::BadRequest {
                    reason: format!("job `{id}` has not finished"),
                })
            }
        }
        std::fs::read_to_string(entry.dir.result_path()).map_err(io_err("reading result.json"))
    }

    /// The in-memory [`SimResult`] of a job completed by *this*
    /// process (recovered `done` jobs serve [`Daemon::result_json`]
    /// from the ledger instead).
    pub fn result_sim(&self, id: &str) -> Result<Option<SimResult>, ServeError> {
        Ok(self.entry(id)?.shared.result.lock().unwrap().clone())
    }

    /// Subscribes to a job's event stream: the receiver first gets the
    /// history so far, then live per-tick blocks until the job ends.
    pub fn subscribe(&self, id: &str) -> Result<Receiver<StreamMsg>, ServeError> {
        let entry = self.entry(id)?;
        Ok(entry.shared.subscribe(self.inner.subscriber_queue))
    }

    // -- internals ----------------------------------------------------------

    fn entry(&self, id: &str) -> Result<Arc<JobEntry>, ServeError> {
        self.inner
            .registry
            .lock()
            .unwrap()
            .get(id)
            .cloned()
            .ok_or_else(|| ServeError::UnknownJob { id: id.to_string() })
    }

    fn fresh_id(&self) -> String {
        format!("job-{}", self.inner.next_id.fetch_add(1, Ordering::AcqRel))
    }

    fn job_dir(&self, id: &str) -> JobDir {
        JobDir::new(self.inner.jobs_dir.join(id))
    }

    fn register_and_enqueue(&self, entry: Arc<JobEntry>, mode: StartMode) {
        self.inner
            .registry
            .lock()
            .unwrap()
            .insert(entry.id.clone(), Arc::clone(&entry));
        let pool = self.inner.pool.lock().unwrap();
        if let Some(pool) = pool.as_ref() {
            pool.submit(move || run_job(&entry, mode));
        } else {
            entry.shared.set_status(JobStatus::Failed {
                message: "daemon is shutting down".into(),
            });
            entry.shared.complete_stream();
        }
    }

    fn note(&self, job: &str, note: impl Into<String>) {
        self.inner.recovery.lock().unwrap().push(RecoveryNote {
            job: job.to_string(),
            note: note.into(),
        });
    }

    /// Scans the ledger on startup. `done`/`failed` jobs are
    /// re-registered for queries and stream replay; `queued`/`running`
    /// jobs are resumed from their newest intact checkpoint (or
    /// restarted fresh when none survives — determinism makes the
    /// re-run equivalent).
    fn recover(&self) -> Result<(), ServeError> {
        let mut dirs: Vec<PathBuf> = std::fs::read_dir(&self.inner.jobs_dir)
            .map_err(io_err("scanning the jobs directory"))?
            .flatten()
            .filter(|e| e.path().is_dir())
            .map(|e| e.path())
            .collect();
        dirs.sort();
        let mut max_id = 0u64;
        for path in dirs {
            let id = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default()
                .to_string();
            if let Some(n) = id.strip_prefix("job-").and_then(|n| n.parse::<u64>().ok()) {
                max_id = max_id.max(n);
            }
            self.recover_one(&id, JobDir::new(path));
        }
        self.inner
            .next_id
            .store(max_id + 1, Ordering::Release);
        Ok(())
    }

    fn recover_one(&self, id: &str, dir: JobDir) {
        let meta = dir.read_meta();
        let spec = dir.read_spec();
        match (meta, spec) {
            (Ok(meta), Ok((spec, scenario))) => {
                self.recover_with_spec(id, dir, meta, spec, scenario)
            }
            (meta, Err(e)) => {
                // Without a spec the job cannot run again; record the
                // typed failure in memory and (best-effort) on disk.
                self.note(id, format!("spec unrecoverable: {e}"));
                let message = format!("unrecoverable ledger: {e}");
                let shared = Arc::new(JobShared::new(JobStatus::Failed {
                    message: message.clone(),
                }));
                shared.complete_stream();
                let _ = dir.write_meta(&JobMeta {
                    id: id.to_string(),
                    status: JobStatus::Failed { message },
                    checkpoint_every: meta.ok().and_then(|m| m.checkpoint_every),
                    forked_from: None,
                });
                self.inner.registry.lock().unwrap().insert(
                    id.to_string(),
                    Arc::new(JobEntry {
                        id: id.to_string(),
                        dir,
                        scenario: None,
                        spec: None,
                        checkpoint_every: None,
                        forked_from: None,
                        shared,
                    }),
                );
            }
            (Err(e), Ok((spec, scenario))) => {
                // Meta corrupt but the spec survives: a fresh
                // deterministic re-run loses nothing.
                self.note(id, format!("meta corrupt ({e}); restarting fresh"));
                let meta = JobMeta {
                    id: id.to_string(),
                    status: JobStatus::Queued,
                    checkpoint_every: self.inner.default_every,
                    forked_from: None,
                };
                let _ = dir.write_meta(&meta);
                self.restart_fresh(id, dir, meta, spec, scenario);
            }
        }
    }

    fn recover_with_spec(
        &self,
        id: &str,
        dir: JobDir,
        meta: JobMeta,
        spec: Value,
        scenario: Scenario,
    ) {
        match &meta.status {
            JobStatus::Done | JobStatus::Failed { .. } => {
                // Re-register for queries; preload the stream history
                // so late subscribers can replay the finished feed.
                let shared = Arc::new(JobShared::new(meta.status.clone()));
                {
                    let mut st = shared.stream.lock().unwrap();
                    st.history = std::fs::read(dir.events_path()).unwrap_or_default();
                    st.complete = true;
                }
                shared
                    .tick
                    .store(scenario.horizon_ticks(), Ordering::Release);
                self.inner.registry.lock().unwrap().insert(
                    id.to_string(),
                    Arc::new(JobEntry {
                        id: id.to_string(),
                        dir,
                        scenario: Some(scenario),
                        spec: Some(spec),
                        checkpoint_every: meta.checkpoint_every,
                        forked_from: meta.forked_from.clone(),
                        shared,
                    }),
                );
            }
            JobStatus::Queued | JobStatus::Running => {
                // Find the newest checkpoint that (a) reads back clean
                // and (b) has a stream-offset index entry that fits the
                // stream file. Anything that fails either check is
                // deleted and noted.
                let index = dir.read_index();
                let stream_len = std::fs::metadata(dir.events_path())
                    .map(|m| m.len())
                    .unwrap_or(0);
                let mut resume = None;
                for (tick, path) in dir.checkpoints_desc() {
                    let usable = index
                        .get(&tick)
                        .filter(|&&off| off <= stream_len)
                        .and_then(|&off| Snapshot::read(&path).ok().map(|s| (s, off)));
                    match usable {
                        Some((snap, off)) if snap.tick() == tick => {
                            resume = Some((snap, off));
                            break;
                        }
                        _ => {
                            self.note(
                                id,
                                format!("discarding unusable checkpoint at tick {tick}"),
                            );
                            let _ = std::fs::remove_file(&path);
                        }
                    }
                }
                match resume {
                    Some((snap, offset)) => {
                        let tick = snap.tick();
                        self.note(id, format!("resuming from the tick-{tick} checkpoint"));
                        // Truncate the stream to the checkpoint's
                        // recorded length: the resumed engine re-emits
                        // the identical suffix.
                        if truncate_file(&dir, offset).is_err() {
                            self.note(id, "stream truncation failed; restarting fresh");
                            self.restart_fresh(id, dir, meta, spec, scenario);
                            return;
                        }
                        let keep: BTreeMap<u64, u64> = index
                            .range(..=tick)
                            .map(|(&t, &o)| (t, o))
                            .collect();
                        let _ = dir.rewrite_index(&keep);
                        let history =
                            std::fs::read(dir.events_path()).unwrap_or_default();
                        let shared = Arc::new(JobShared::new(JobStatus::Queued));
                        {
                            let mut st = shared.stream.lock().unwrap();
                            st.history = history;
                            st.next_tick = tick + 1;
                        }
                        let mode = if meta.forked_from.is_some() {
                            // A fork's config differs from the
                            // snapshotting run by design; strict resume
                            // would refuse it.
                            StartMode::Fork(snap)
                        } else {
                            StartMode::Resume(snap)
                        };
                        let entry = Arc::new(JobEntry {
                            id: id.to_string(),
                            dir,
                            scenario: Some(scenario),
                            spec: Some(spec),
                            checkpoint_every: meta.checkpoint_every,
                            forked_from: meta.forked_from.clone(),
                            shared,
                        });
                        self.register_and_enqueue(entry, mode);
                    }
                    None => {
                        self.note(id, "no usable checkpoint; restarting fresh");
                        self.restart_fresh(id, dir, meta, spec, scenario);
                    }
                }
            }
        }
    }

    fn restart_fresh(&self, id: &str, dir: JobDir, meta: JobMeta, spec: Value, scenario: Scenario) {
        let _ = truncate_file(&dir, 0);
        let _ = dir.rewrite_index(&BTreeMap::new());
        for (_, path) in dir.checkpoints_desc() {
            let _ = std::fs::remove_file(path);
        }
        // For a fork this re-runs the merged spec from tick 0 — same
        // config, same seed, so the result is still deterministic even
        // though the copied stream prefix is gone.
        let entry = Arc::new(JobEntry {
            id: id.to_string(),
            dir,
            scenario: Some(scenario),
            spec: Some(spec),
            checkpoint_every: meta.checkpoint_every,
            forked_from: meta.forked_from,
            shared: Arc::new(JobShared::new(JobStatus::Queued)),
        });
        self.register_and_enqueue(entry, StartMode::Fresh);
    }
}

fn truncate_file(dir: &JobDir, len: u64) -> std::io::Result<()> {
    match std::fs::OpenOptions::new().write(true).open(dir.events_path()) {
        Ok(f) => f.set_len(len),
        // No stream file yet is the same as an empty one.
        Err(e) if e.kind() == std::io::ErrorKind::NotFound && len == 0 => Ok(()),
        Err(e) => Err(e),
    }
}

/// Deep-merges `overrides` into `base`: objects merge recursively,
/// `null` removes a key, everything else replaces.
pub fn deep_merge(base: &Value, overrides: &Value) -> Value {
    match (base, overrides) {
        (Value::Object(b), Value::Object(o)) => {
            let mut out = b.clone();
            for (key, val) in o {
                let existing = out.iter().position(|(k, _)| k == key);
                match (existing, val) {
                    (Some(i), Value::Null) => {
                        out.remove(i);
                    }
                    (None, Value::Null) => {}
                    (Some(i), _) => out[i].1 = deep_merge(&out[i].1, val),
                    (None, _) => out.push((key.clone(), val.clone())),
                }
            }
            Value::Object(out)
        }
        (_, v) => v.clone(),
    }
}

// ---------------------------------------------------------------------------
// The job runner
// ---------------------------------------------------------------------------

/// Executes one job on a pool worker. Every failure — engine refusal,
/// ledger I/O, a panic out of the engine — lands in the job's status
/// as a typed message; nothing propagates out of the worker.
fn run_job(entry: &Arc<JobEntry>, mode: StartMode) {
    entry.shared.set_status(JobStatus::Running);
    let _ = entry.dir.write_meta(&JobMeta {
        id: entry.id.clone(),
        status: JobStatus::Running,
        checkpoint_every: entry.checkpoint_every,
        forked_from: entry.forked_from.clone(),
    });
    let outcome = catch_unwind(AssertUnwindSafe(|| run_job_inner(entry, mode)));
    let status = match outcome {
        Ok(Ok(())) => JobStatus::Done,
        Ok(Err(e)) => JobStatus::Failed {
            message: e.to_string(),
        },
        Err(panic) => JobStatus::Failed {
            message: format!("job panicked: {}", panic_message(&panic)),
        },
    };
    let _ = entry.dir.write_meta(&JobMeta {
        id: entry.id.clone(),
        status: status.clone(),
        checkpoint_every: entry.checkpoint_every,
        forked_from: entry.forked_from.clone(),
    });
    entry.shared.complete_stream();
    entry.shared.set_status(status);
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

fn run_job_inner(entry: &Arc<JobEntry>, mode: StartMode) -> Result<(), ServeError> {
    let scenario = entry
        .scenario
        .as_ref()
        .ok_or_else(|| ServeError::Ledger {
            what: "job has no runnable scenario".into(),
        })?;
    let world = scenario.build_world();
    let config = scenario.sim_config_for(&world);
    let behavior = scenario.worm_behavior();
    let horizon = scenario.horizon_ticks();

    let mut sim = match &mode {
        StartMode::Fresh => Simulator::try_new(&world, &config, behavior, scenario.base_seed())
            .map_err(|e| ServeError::Engine(e.to_string()))?,
        StartMode::Resume(snap) => Simulator::resume(&world, &config, behavior, snap)?,
        StartMode::Fork(snap) => Simulator::resume_with(&world, &config, behavior, snap)?,
    };

    // Stream file: fresh jobs start clean; resumed/forked jobs already
    // hold the exact prefix their in-memory history mirrors.
    let mut events = match &mode {
        StartMode::Fresh => std::fs::File::create(entry.dir.events_path())
            .map_err(io_err("creating events.jsonl"))?,
        _ => std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(entry.dir.events_path())
            .map_err(io_err("opening events.jsonl"))?,
    };

    let shared = Arc::clone(&entry.shared);
    // Cell, not a plain Option: the feed closure needs to latch write
    // failures while the loop below also polls them.
    let stream_error: std::cell::Cell<Option<std::io::Error>> = std::cell::Cell::new(None);
    let mut feed = TickFeed::new(|block| {
        if let Err(e) = events.write_all(&block.lines) {
            let first = stream_error.take().unwrap_or(e);
            stream_error.set(Some(first));
        }
        shared.fan_out(&block);
    });

    let mut tick = sim.current_tick();
    loop {
        let target = match entry.checkpoint_every {
            Some(every) => ((tick / every) + 1) * every,
            None => horizon,
        }
        .min(horizon);
        sim.run_until(target, &mut feed);
        tick = target;
        if tick >= horizon {
            break;
        }
        // Flush the stream before the checkpoint so the index offset
        // it records is durable.
        if let Some(e) = stream_error.take() {
            return Err(ServeError::Io {
                what: "writing events.jsonl".into(),
                source: e,
            });
        }
        let offset = entry.shared.stream.lock().unwrap().history.len() as u64;
        sim.snapshot()
            .write_atomic(&entry.dir.checkpoint_path(tick))
            .map_err(ServeError::Snapshot)?;
        entry.dir.append_index(tick, offset)?;
    }
    drop(feed);
    if let Some(e) = stream_error.take() {
        return Err(ServeError::Io {
            what: "writing events.jsonl".into(),
            source: e,
        });
    }
    let result = sim.finish();
    write_atomic(&entry.dir.result_path(), result_to_json(&result).as_bytes())?;
    *entry.shared.result.lock().unwrap() = Some(result);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::pump_stream;
    use dynaquar_core::spec::parse_json;
    use dynaquar_netsim::JsonlEventWriter;

    fn temp_state(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dq-serve-daemon-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn star_spec() -> Value {
        parse_json(
            r#"{
                "topology": {"kind": "star", "leaves": 60},
                "beta": 0.8,
                "horizon": 40,
                "initial_infected": 1,
                "deployment": {"hosts": 1.0},
                "params": {"host_window_ticks": 200, "host_max_new_targets": 1,
                           "host_release_period_ticks": 10},
                "quarantine": {"queue_threshold": 3},
                "runs": 1,
                "seed": 21
            }"#,
        )
        .unwrap()
    }

    fn direct_run(spec: &Value) -> (SimResult, Vec<u8>) {
        let scenario = scenario_from_value(spec).unwrap();
        let world = scenario.build_world();
        let config = scenario.sim_config_for(&world);
        let sim = Simulator::try_new(&world, &config, scenario.worm_behavior(), scenario.base_seed())
            .unwrap();
        let mut writer = JsonlEventWriter::new(Vec::new());
        let result = sim.run_observed(&mut writer);
        (result, writer.finish().unwrap())
    }

    #[test]
    fn served_job_matches_a_direct_run_bit_for_bit() {
        let state = temp_state("direct");
        let daemon = Daemon::open(ServeConfig::new(&state)).unwrap();
        let spec = star_spec();
        let id = daemon.submit(&spec, Some(10)).unwrap();
        let rx = daemon.subscribe(&id).unwrap();
        daemon.wait(&id).unwrap();
        let mut stream = Vec::new();
        let stats = pump_stream(rx, &mut stream).unwrap();
        assert_eq!(stats.catchups, 0, "a prompt subscriber never lags");

        let (direct_result, direct_stream) = direct_run(&spec);
        assert_eq!(stream, direct_stream, "subscriber stream diverged");
        assert_eq!(
            daemon.result_sim(&id).unwrap().unwrap(),
            direct_result,
            "served result diverged"
        );
        assert_eq!(daemon.result_json(&id).unwrap(), result_to_json(&direct_result));
        // The persisted stream file matches too.
        let on_disk = std::fs::read(state.join("jobs").join(&id).join("events.jsonl")).unwrap();
        assert_eq!(on_disk, direct_stream);
        daemon.shutdown();
        let _ = std::fs::remove_dir_all(&state);
    }

    #[test]
    fn invalid_specs_and_unknown_jobs_yield_typed_errors() {
        let state = temp_state("errors");
        let daemon = Daemon::open(ServeConfig::new(&state)).unwrap();
        let bad = parse_json(r#"{"topology": {"kind": "moebius"}}"#).unwrap();
        assert!(matches!(daemon.submit(&bad, None), Err(ServeError::Spec(_))));
        let mut multi = star_spec();
        if let Value::Object(entries) = &mut multi {
            for (key, value) in entries.iter_mut() {
                if key == "runs" {
                    *value = Value::Int(5);
                }
            }
        }
        assert!(matches!(
            daemon.submit(&multi, None),
            Err(ServeError::Unsupported { .. })
        ));
        assert!(matches!(
            daemon.status("job-99"),
            Err(ServeError::UnknownJob { .. })
        ));
        daemon.shutdown();
        let _ = std::fs::remove_dir_all(&state);
    }

    #[test]
    fn fork_reruns_the_tail_under_a_modified_defense() {
        let state = temp_state("fork");
        let daemon = Daemon::open(ServeConfig::new(&state)).unwrap();
        let spec = star_spec();
        let id = daemon.submit(&spec, Some(10)).unwrap();
        daemon.wait(&id).unwrap();

        // Move the quarantine trigger earlier: the what-if query the
        // fork verb exists for. Forking twice with identical arguments
        // must reproduce identical results and streams — the fork path
        // is as deterministic as a fresh run.
        let overrides = parse_json(r#"{"quarantine": {"queue_threshold": 2}}"#).unwrap();
        let fork_a = daemon.fork(&id, Some(20), &overrides).unwrap();
        let fork_b = daemon.fork(&id, Some(20), &overrides).unwrap();
        daemon.wait(&fork_a).unwrap();
        daemon.wait(&fork_b).unwrap();
        let ra = daemon.result_sim(&fork_a).unwrap().unwrap();
        let rb = daemon.result_sim(&fork_b).unwrap().unwrap();
        assert_eq!(ra, rb, "identical forks diverged");

        // Fork stream: byte-exact source prefix, then its own tail —
        // and both forks stream identically.
        let job_stream = |j: &str| std::fs::read(state.join("jobs").join(j).join("events.jsonl")).unwrap();
        let src_stream = job_stream(&id);
        let fork_stream = job_stream(&fork_a);
        assert_eq!(fork_stream, job_stream(&fork_b));
        let src_index = JobDir::new(state.join("jobs").join(&id)).read_index();
        let prefix_len = *src_index.get(&20).unwrap() as usize;
        assert_eq!(&fork_stream[..prefix_len], &src_stream[..prefix_len]);

        // The lineage shows up in the status document.
        let status = daemon.status_value(&fork_a).unwrap();
        assert_eq!(status.get("forked_from").and_then(Value::as_str), Some(id.as_str()));
        assert_eq!(status.get("fork_tick").and_then(Value::as_int), Some(20));
        daemon.shutdown();
        let _ = std::fs::remove_dir_all(&state);
    }

    #[test]
    fn deep_merge_merges_removes_and_replaces() {
        let base = parse_json(r#"{"a": 1, "b": {"x": 1, "y": 2}, "c": 3}"#).unwrap();
        let over = parse_json(r#"{"b": {"y": 9}, "c": null, "d": 4}"#).unwrap();
        let merged = deep_merge(&base, &over);
        assert_eq!(merged.get("a").and_then(Value::as_int), Some(1));
        assert_eq!(
            merged.get("b").and_then(|b| b.get("x")).and_then(Value::as_int),
            Some(1)
        );
        assert_eq!(
            merged.get("b").and_then(|b| b.get("y")).and_then(Value::as_int),
            Some(9)
        );
        assert!(merged.get("c").is_none(), "null removes");
        assert_eq!(merged.get("d").and_then(Value::as_int), Some(4));
    }

    #[test]
    fn restarted_daemon_recovers_a_finished_job_from_the_ledger() {
        let state = temp_state("reopen");
        let spec = star_spec();
        let (id, result_json_text) = {
            let daemon = Daemon::open(ServeConfig::new(&state)).unwrap();
            let id = daemon.submit(&spec, Some(10)).unwrap();
            daemon.wait(&id).unwrap();
            let text = daemon.result_json(&id).unwrap();
            daemon.shutdown();
            (id, text)
        };
        let daemon = Daemon::open(ServeConfig::new(&state)).unwrap();
        assert_eq!(daemon.status(&id).unwrap(), JobStatus::Done);
        assert_eq!(daemon.result_json(&id).unwrap(), result_json_text);
        // Late subscribers replay the persisted stream.
        let rx = daemon.subscribe(&id).unwrap();
        let mut replay = Vec::new();
        pump_stream(rx, &mut replay).unwrap();
        let (_, direct_stream) = direct_run(&spec);
        assert_eq!(replay, direct_stream);
        // New submissions do not collide with recovered ids.
        let new_id = daemon.submit(&spec, None).unwrap();
        assert_ne!(new_id, id);
        daemon.shutdown();
        let _ = std::fs::remove_dir_all(&state);
    }

    #[test]
    fn engine_refusals_fail_the_job_with_a_typed_message() {
        let state = temp_state("refusal");
        let daemon = Daemon::open(ServeConfig::new(&state)).unwrap();
        // 50 initial infections on a 30-host star: spec-valid, but the
        // engine refuses (typed) — the job must fail, not panic.
        let spec = parse_json(
            r#"{
                "topology": {"kind": "star", "leaves": 30},
                "beta": 0.5, "horizon": 10, "initial_infected": 50, "runs": 1, "seed": 1
            }"#,
        )
        .unwrap();
        let id = daemon.submit(&spec, None).unwrap();
        match daemon.wait(&id) {
            Err(ServeError::JobFailed { message }) => {
                assert!(message.contains("engine error"), "got: {message}");
            }
            other => panic!("expected JobFailed, got {other:?}"),
        }
        daemon.shutdown();
        let _ = std::fs::remove_dir_all(&state);
    }
}
