//! The daemon's typed error surface.
//!
//! Every failure a client or operator can trigger — malformed specs,
//! unknown jobs, corrupt ledgers, refused resumes — maps to a
//! [`ServeError`] variant. The daemon never panics on external input:
//! panics are reserved for engine bugs, and even those are caught at
//! the job boundary and reported as [`ServeError::Engine`].

use dynaquar_core::spec::SpecError;
use dynaquar_netsim::SnapshotError;
use std::fmt;

/// Everything that can go wrong serving a scenario.
#[derive(Debug)]
pub enum ServeError {
    /// The submitted spec failed to parse or validate.
    Spec(SpecError),
    /// A checkpoint could not be read, written, or resumed.
    Snapshot(SnapshotError),
    /// A filesystem operation on the job ledger failed.
    Io {
        /// What the daemon was doing.
        what: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The on-disk job ledger is damaged (unparseable metadata, a
    /// missing index entry, an impossible offset). Recovery degrades
    /// to a fresh deterministic re-run when the spec survives; this
    /// error is what gets recorded, never a panic.
    Ledger {
        /// What was wrong.
        what: String,
    },
    /// No job with the given id.
    UnknownJob {
        /// The id the client asked for.
        id: String,
    },
    /// A syntactically valid request the daemon cannot honor.
    BadRequest {
        /// Why the request was refused.
        reason: String,
    },
    /// The job ran and failed; the message is its recorded failure.
    JobFailed {
        /// The failure recorded in the job ledger.
        message: String,
    },
    /// A valid scenario the daemon does not serve (e.g. `runs > 1`:
    /// one job is one seeded run — ensemble sweeps belong to the batch
    /// runner, not the daemon).
    Unsupported {
        /// What is not servable.
        what: String,
    },
    /// The engine refused to build or finish the run.
    Engine(String),
}

impl ServeError {
    /// Stable snake-case discriminant for the wire protocol's
    /// `error.kind` field.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::Spec(_) => "spec",
            ServeError::Snapshot(_) => "snapshot",
            ServeError::Io { .. } => "io",
            ServeError::Ledger { .. } => "ledger",
            ServeError::UnknownJob { .. } => "unknown_job",
            ServeError::BadRequest { .. } => "bad_request",
            ServeError::JobFailed { .. } => "job_failed",
            ServeError::Unsupported { .. } => "unsupported",
            ServeError::Engine(_) => "engine",
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Spec(e) => write!(f, "spec error: {e}"),
            ServeError::Snapshot(e) => write!(f, "snapshot error: {e}"),
            ServeError::Io { what, source } => write!(f, "i/o error while {what}: {source}"),
            ServeError::Ledger { what } => write!(f, "corrupt job ledger: {what}"),
            ServeError::UnknownJob { id } => write!(f, "unknown job `{id}`"),
            ServeError::BadRequest { reason } => write!(f, "bad request: {reason}"),
            ServeError::JobFailed { message } => write!(f, "job failed: {message}"),
            ServeError::Unsupported { what } => write!(f, "unsupported: {what}"),
            ServeError::Engine(msg) => write!(f, "engine error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Spec(e) => Some(e),
            ServeError::Snapshot(e) => Some(e),
            ServeError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<SpecError> for ServeError {
    fn from(e: SpecError) -> Self {
        ServeError::Spec(e)
    }
}

impl From<SnapshotError> for ServeError {
    fn from(e: SnapshotError) -> Self {
        ServeError::Snapshot(e)
    }
}

/// Shorthand for tagging an [`std::io::Error`] with what was being done.
pub(crate) fn io_err(what: impl Into<String>) -> impl FnOnce(std::io::Error) -> ServeError {
    let what = what.into();
    move |source| ServeError::Io { what, source }
}
