//! Job state, the on-disk ledger, and the subscriber stream.
//!
//! One job = one seeded simulation run. Each job owns a directory under
//! the daemon's state dir:
//!
//! ```text
//! jobs/job-3/
//!   spec.json            canonical scenario spec (normalized JSON)
//!   meta.json            id, status, checkpoint cadence, fork lineage
//!   events.jsonl         the JSONL event feed written so far
//!   events.index         "tick offset" lines: stream length at each checkpoint
//!   ckpt-tick-40.dqsnap  engine snapshot taken after tick 40
//!   result.json          canonical result encoding, written at completion
//! ```
//!
//! Every file that must survive a crash is written atomically (tmp +
//! rename). The pair (checkpoint, index entry) is what makes resumed
//! event streams *byte-identical*: recovery truncates `events.jsonl` to
//! the stream length recorded for the resumed tick, and the
//! deterministic engine re-produces the identical suffix.
//!
//! Subscribers receive the stream as per-tick [`TickBlock`]s over a
//! bounded channel. The fan-out uses `try_send` — a slow subscriber's
//! blocks are dropped and counted, never queued unboundedly, and the
//! engine is never blocked. The consumer ([`pump_stream`]) detects the
//! tick gap and writes a `catchup` line carrying the next block's
//! census snapshot, so a lagging client keeps a consistent (if coarser)
//! view.

use crate::error::{io_err, ServeError};
use dynaquar_core::spec::{emit_json, parse_json, Value};
use dynaquar_core::Scenario;
use dynaquar_netsim::metrics::TickBlock;
use dynaquar_netsim::sim::SimResult;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Condvar, Mutex};

/// Lifecycle phase of a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus {
    /// Accepted, not yet claimed by a worker.
    Queued,
    /// A worker is advancing the simulation.
    Running,
    /// Finished; `result.json` is on disk.
    Done,
    /// Failed with a recorded (typed, never panicking) error.
    Failed {
        /// The recorded failure.
        message: String,
    },
}

impl JobStatus {
    /// Stable label for `meta.json` and the wire protocol.
    pub fn label(&self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed { .. } => "failed",
        }
    }
}

/// What a subscriber receives.
#[derive(Debug)]
pub enum StreamMsg {
    /// Catch-up on registration: every stream byte produced so far and
    /// the first live tick the subscriber should expect next.
    History {
        /// The stream so far (possibly empty).
        bytes: Vec<u8>,
        /// Tick of the next live block.
        next_tick: u64,
    },
    /// One completed tick's stream bytes.
    Block(TickBlock),
}

pub(crate) struct Subscriber {
    tx: SyncSender<StreamMsg>,
    pub(crate) dropped: u64,
}

/// The stream side of a job: full history for late joiners, live
/// fan-out for attached subscribers.
pub(crate) struct StreamState {
    pub(crate) history: Vec<u8>,
    pub(crate) next_tick: u64,
    pub(crate) complete: bool,
    pub(crate) subscribers: Vec<Subscriber>,
}

impl Default for StreamState {
    fn default() -> Self {
        StreamState {
            history: Vec::new(),
            // The engine numbers ticks 1..=horizon, so a fresh job's
            // first block carries tick 1.
            next_tick: 1,
            complete: false,
            subscribers: Vec::new(),
        }
    }
}

/// State shared between the daemon front-end and the worker running
/// the job.
pub(crate) struct JobShared {
    pub(crate) status: Mutex<JobStatus>,
    pub(crate) done: Condvar,
    pub(crate) tick: AtomicU64,
    pub(crate) stream: Mutex<StreamState>,
    pub(crate) result: Mutex<Option<SimResult>>,
}

impl JobShared {
    pub(crate) fn new(status: JobStatus) -> Self {
        JobShared {
            status: Mutex::new(status),
            done: Condvar::new(),
            tick: AtomicU64::new(0),
            stream: Mutex::new(StreamState::default()),
            result: Mutex::new(None),
        }
    }

    pub(crate) fn set_status(&self, status: JobStatus) {
        *self.status.lock().unwrap() = status;
        self.done.notify_all();
    }

    /// Blocks until the job leaves the queued/running phases.
    pub(crate) fn wait_terminal(&self) -> JobStatus {
        let mut status = self.status.lock().unwrap();
        loop {
            match &*status {
                JobStatus::Done | JobStatus::Failed { .. } => return status.clone(),
                _ => status = self.done.wait(status).unwrap(),
            }
        }
    }

    /// Appends one tick block to the history and fans it out to every
    /// attached subscriber without ever blocking: a full queue means
    /// the block is dropped for that subscriber and counted.
    pub(crate) fn fan_out(&self, block: &TickBlock) {
        self.tick.store(block.tick, Ordering::Release);
        let mut st = self.stream.lock().unwrap();
        st.history.extend_from_slice(&block.lines);
        st.next_tick = block.tick + 1;
        st.subscribers
            .retain_mut(|sub| match sub.tx.try_send(StreamMsg::Block(block.clone())) {
                Ok(()) => true,
                Err(TrySendError::Full(_)) => {
                    sub.dropped += 1;
                    true
                }
                Err(TrySendError::Disconnected(_)) => false,
            });
    }

    /// Marks the stream finished and detaches every subscriber; their
    /// receivers drain any queued blocks and then disconnect.
    pub(crate) fn complete_stream(&self) {
        let mut st = self.stream.lock().unwrap();
        st.complete = true;
        st.subscribers.clear();
    }

    /// Registers a subscriber: it immediately receives the history so
    /// far, then live blocks until the job completes. `bound` is the
    /// live-block queue depth before blocks start being dropped.
    pub(crate) fn subscribe(&self, bound: usize) -> Receiver<StreamMsg> {
        let mut st = self.stream.lock().unwrap();
        // +1 reserves a slot for the registration History message, so
        // `bound` counts live blocks.
        let (tx, rx) = std::sync::mpsc::sync_channel(bound.max(1) + 1);
        // The queue is empty and holds at least two messages, so this
        // send cannot block while we hold the stream lock.
        let _ = tx.send(StreamMsg::History {
            bytes: st.history.clone(),
            next_tick: st.next_tick,
        });
        if !st.complete {
            st.subscribers.push(Subscriber { tx, dropped: 0 });
        }
        rx
    }
}

impl std::fmt::Debug for JobShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobShared")
            .field("tick", &self.tick.load(Ordering::Relaxed))
            .finish()
    }
}

/// Statistics from pumping one subscription to completion.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PumpStats {
    /// Live blocks written.
    pub blocks: u64,
    /// Catch-up lines written (one per detected gap).
    pub catchups: u64,
    /// Ticks skipped across all gaps.
    pub missed_ticks: u64,
}

/// Drains a subscription into `out`. A subscriber that keeps up
/// receives bytes identical to the contiguous [`dynaquar_netsim::JsonlEventWriter`]
/// stream; on a detected gap (dropped blocks) a single `catchup` JSON
/// line carrying the next block's census is interposed before the
/// stream continues.
pub fn pump_stream<W: Write>(rx: Receiver<StreamMsg>, out: &mut W) -> std::io::Result<PumpStats> {
    let mut stats = PumpStats::default();
    let mut expected: Option<u64> = None;
    while let Ok(msg) = rx.recv() {
        match msg {
            StreamMsg::History { bytes, next_tick } => {
                out.write_all(&bytes)?;
                expected = Some(next_tick);
            }
            StreamMsg::Block(block) => {
                if let Some(e) = expected {
                    if block.tick > e {
                        let s = block.snapshot;
                        writeln!(
                            out,
                            "{{\"event\":\"catchup\",\"resumed_tick\":{},\"missed_ticks\":{},\
                             \"infected\":{},\"ever_infected\":{},\"immunized\":{},\"in_flight\":{}}}",
                            block.tick,
                            block.tick - e,
                            s.infected,
                            s.ever_infected,
                            s.immunized,
                            s.in_flight
                        )?;
                        stats.catchups += 1;
                        stats.missed_ticks += block.tick - e;
                    }
                }
                out.write_all(&block.lines)?;
                expected = Some(block.tick + 1);
                stats.blocks += 1;
            }
        }
    }
    out.flush()?;
    Ok(stats)
}

// ---------------------------------------------------------------------------
// Ledger files
// ---------------------------------------------------------------------------

/// Fork lineage recorded in `meta.json`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForkOrigin {
    /// Job the fork branched from.
    pub from: String,
    /// Tick of the checkpoint the fork resumed at.
    pub at_tick: u64,
}

/// The persisted part of a job's identity — everything recovery needs
/// besides the spec itself.
#[derive(Debug, Clone, PartialEq)]
pub struct JobMeta {
    /// Job id (`job-<n>`).
    pub id: String,
    /// Last persisted status.
    pub status: JobStatus,
    /// Checkpoint cadence in ticks, if checkpointing.
    pub checkpoint_every: Option<u64>,
    /// Fork lineage, if this job was forked.
    pub forked_from: Option<ForkOrigin>,
}

impl JobMeta {
    fn to_value(&self) -> Value {
        let mut entries = vec![
            ("id".into(), Value::Str(self.id.clone())),
            ("status".into(), Value::Str(self.status.label().into())),
        ];
        if let JobStatus::Failed { message } = &self.status {
            entries.push(("message".into(), Value::Str(message.clone())));
        }
        if let Some(every) = self.checkpoint_every {
            entries.push((
                "checkpoint_every".into(),
                Value::Int(i64::try_from(every).unwrap_or(i64::MAX)),
            ));
        }
        if let Some(fork) = &self.forked_from {
            entries.push(("forked_from".into(), Value::Str(fork.from.clone())));
            entries.push((
                "fork_tick".into(),
                Value::Int(i64::try_from(fork.at_tick).unwrap_or(i64::MAX)),
            ));
        }
        Value::Object(entries)
    }

    fn from_value(v: &Value) -> Result<Self, ServeError> {
        let bad = |what: &str| ServeError::Ledger { what: what.into() };
        let id = v
            .get("id")
            .and_then(Value::as_str)
            .ok_or_else(|| bad("meta.json has no id"))?
            .to_string();
        let status = match v
            .get("status")
            .and_then(Value::as_str)
            .ok_or_else(|| bad("meta.json has no status"))?
        {
            "queued" => JobStatus::Queued,
            "running" => JobStatus::Running,
            "done" => JobStatus::Done,
            "failed" => JobStatus::Failed {
                message: v
                    .get("message")
                    .and_then(Value::as_str)
                    .unwrap_or("unrecorded failure")
                    .to_string(),
            },
            _ => return Err(bad("meta.json has an unknown status")),
        };
        let uint_field = |key: &str| -> Result<Option<u64>, ServeError> {
            match v.get(key) {
                None => Ok(None),
                Some(Value::Int(i)) if *i >= 0 => Ok(Some(*i as u64)),
                Some(_) => Err(ServeError::Ledger {
                    what: format!("meta.json field `{key}` is not a non-negative integer"),
                }),
            }
        };
        let checkpoint_every = uint_field("checkpoint_every")?;
        let forked_from = match (v.get("forked_from").and_then(Value::as_str), uint_field("fork_tick")?) {
            (Some(from), Some(at_tick)) => Some(ForkOrigin {
                from: from.to_string(),
                at_tick,
            }),
            (None, None) => None,
            _ => return Err(bad("meta.json fork lineage is half-recorded")),
        };
        Ok(JobMeta {
            id,
            status,
            checkpoint_every,
            forked_from,
        })
    }
}

/// Path helpers for one job's directory.
#[derive(Debug, Clone)]
pub struct JobDir {
    root: PathBuf,
}

impl JobDir {
    /// Wraps the job directory path (does not create it).
    pub fn new(root: PathBuf) -> Self {
        JobDir { root }
    }

    /// The directory itself.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// `spec.json`.
    pub fn spec_path(&self) -> PathBuf {
        self.root.join("spec.json")
    }

    /// `meta.json`.
    pub fn meta_path(&self) -> PathBuf {
        self.root.join("meta.json")
    }

    /// `events.jsonl`.
    pub fn events_path(&self) -> PathBuf {
        self.root.join("events.jsonl")
    }

    /// `events.index`.
    pub fn index_path(&self) -> PathBuf {
        self.root.join("events.index")
    }

    /// `result.json`.
    pub fn result_path(&self) -> PathBuf {
        self.root.join("result.json")
    }

    /// `ckpt-tick-<tick>.dqsnap`.
    pub fn checkpoint_path(&self, tick: u64) -> PathBuf {
        self.root.join(format!("ckpt-tick-{tick}.dqsnap"))
    }

    /// Every `(tick, path)` checkpoint present, descending by tick.
    /// Unparseable file names are ignored — they are not checkpoints.
    pub fn checkpoints_desc(&self) -> Vec<(u64, PathBuf)> {
        let mut out = Vec::new();
        let Ok(entries) = std::fs::read_dir(&self.root) else {
            return out;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(tick) = name
                .strip_prefix("ckpt-tick-")
                .and_then(|rest| rest.strip_suffix(".dqsnap"))
                .and_then(|t| t.parse::<u64>().ok())
            {
                out.push((tick, entry.path()));
            }
        }
        out.sort_by_key(|(tick, _)| std::cmp::Reverse(*tick));
        out
    }

    /// Atomically persists `meta`.
    pub fn write_meta(&self, meta: &JobMeta) -> Result<(), ServeError> {
        write_atomic(&self.meta_path(), emit_json(&meta.to_value()).as_bytes())
    }

    /// Reads and validates `meta.json`. Corruption is a typed
    /// [`ServeError::Ledger`], never a panic.
    pub fn read_meta(&self) -> Result<JobMeta, ServeError> {
        let text = std::fs::read_to_string(self.meta_path())
            .map_err(io_err("reading meta.json"))?;
        let v = parse_json(&text).map_err(|e| ServeError::Ledger {
            what: format!("meta.json does not parse: {e}"),
        })?;
        JobMeta::from_value(&v)
    }

    /// Atomically persists the canonical spec.
    pub fn write_spec(&self, spec: &Value) -> Result<(), ServeError> {
        write_atomic(&self.spec_path(), emit_json(spec).as_bytes())
    }

    /// Reads and re-validates `spec.json` into a [`Scenario`].
    pub fn read_spec(&self) -> Result<(Value, Scenario), ServeError> {
        let text = std::fs::read_to_string(self.spec_path())
            .map_err(io_err("reading spec.json"))?;
        let v = parse_json(&text).map_err(|e| ServeError::Ledger {
            what: format!("spec.json does not parse: {e}"),
        })?;
        let scenario = dynaquar_core::spec::scenario_from_value(&v)?;
        Ok((v, scenario))
    }

    /// Appends one `tick offset` line to the stream index.
    pub fn append_index(&self, tick: u64, offset: u64) -> Result<(), ServeError> {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.index_path())
            .map_err(io_err("opening events.index"))?;
        writeln!(f, "{tick} {offset}").map_err(io_err("appending to events.index"))?;
        f.sync_data().map_err(io_err("syncing events.index"))
    }

    /// Parses the stream index. Reading stops at the first malformed
    /// line — a torn append invalidates only the entries after it.
    pub fn read_index(&self) -> BTreeMap<u64, u64> {
        let mut map = BTreeMap::new();
        let Ok(text) = std::fs::read_to_string(self.index_path()) else {
            return map;
        };
        for line in text.lines() {
            let mut parts = line.split_whitespace();
            match (
                parts.next().and_then(|t| t.parse::<u64>().ok()),
                parts.next().and_then(|o| o.parse::<u64>().ok()),
                parts.next(),
            ) {
                (Some(tick), Some(offset), None) => {
                    map.insert(tick, offset);
                }
                _ => break,
            }
        }
        map
    }

    /// Rewrites the index to exactly `entries` (used when recovery
    /// discards checkpoints past the resume point).
    pub fn rewrite_index(&self, entries: &BTreeMap<u64, u64>) -> Result<(), ServeError> {
        let mut text = String::new();
        for (tick, offset) in entries {
            text.push_str(&format!("{tick} {offset}\n"));
        }
        write_atomic(&self.index_path(), text.as_bytes())
    }
}

/// Atomic tmp + rename write, the same discipline the engine's
/// snapshot writer uses: a crash leaves either the old file or the new
/// one, never a torn hybrid.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), ServeError> {
    let tmp = path.with_extension("tmp");
    let write = || -> std::io::Result<()> {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_data()?;
        std::fs::rename(&tmp, path)
    };
    write().map_err(io_err(format!("writing {}", path.display())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynaquar_netsim::observer::TickSnapshot;

    fn block(tick: u64, text: &str) -> TickBlock {
        TickBlock {
            tick,
            lines: text.as_bytes().to_vec(),
            snapshot: TickSnapshot {
                infected: 3,
                ever_infected: 5,
                immunized: 2,
                in_flight: 1,
            },
        }
    }

    #[test]
    fn meta_round_trips_through_its_json() {
        for meta in [
            JobMeta {
                id: "job-1".into(),
                status: JobStatus::Queued,
                checkpoint_every: None,
                forked_from: None,
            },
            JobMeta {
                id: "job-9".into(),
                status: JobStatus::Failed {
                    message: "engine error: boom".into(),
                },
                checkpoint_every: Some(25),
                forked_from: Some(ForkOrigin {
                    from: "job-2".into(),
                    at_tick: 50,
                }),
            },
        ] {
            let v = meta.to_value();
            let back = JobMeta::from_value(&v).unwrap();
            assert_eq!(meta, back);
            // And through actual bytes.
            let reparsed = parse_json(&emit_json(&v)).unwrap();
            assert_eq!(JobMeta::from_value(&reparsed).unwrap(), meta);
        }
    }

    #[test]
    fn corrupt_meta_is_a_typed_ledger_error() {
        let v = parse_json("{\"id\":\"job-1\",\"status\":\"levitating\"}").unwrap();
        match JobMeta::from_value(&v) {
            Err(ServeError::Ledger { .. }) => {}
            other => panic!("expected a ledger error, got {other:?}"),
        }
    }

    #[test]
    fn pump_without_gaps_is_byte_identical_and_gap_inserts_one_catchup_line() {
        // No gaps: history + contiguous blocks concatenate exactly.
        let shared = JobShared::new(JobStatus::Running);
        shared.fan_out(&block(0, "a0\n"));
        let rx = shared.subscribe(64);
        shared.fan_out(&block(1, "b1\n"));
        shared.complete_stream();
        let mut out = Vec::new();
        let stats = pump_stream(rx, &mut out).unwrap();
        assert_eq!(out, b"a0\nb1\n");
        assert_eq!(stats.blocks, 1);
        assert_eq!(stats.catchups, 0);

        // A tick gap yields exactly one catchup line with the census.
        let shared = JobShared::new(JobStatus::Running);
        let rx = shared.subscribe(64);
        shared.fan_out(&block(0, "a0\n"));
        shared.fan_out(&block(4, "e4\n"));
        shared.complete_stream();
        let mut out = Vec::new();
        let stats = pump_stream(rx, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(stats.catchups, 1);
        assert_eq!(stats.missed_ticks, 3);
        assert_eq!(
            text,
            "a0\n{\"event\":\"catchup\",\"resumed_tick\":4,\"missed_ticks\":3,\
             \"infected\":3,\"ever_infected\":5,\"immunized\":2,\"in_flight\":1}\ne4\n"
        );
    }

    #[test]
    fn slow_subscriber_drops_blocks_but_engine_side_never_blocks() {
        let shared = JobShared::new(JobStatus::Running);
        let rx = shared.subscribe(1);
        // The consumer never drains, so after the single live slot
        // fills, every further block is dropped — and, crucially,
        // fan_out returns instead of waiting for the consumer.
        for t in 0..5 {
            shared.fan_out(&block(t, &format!("t{t}\n")));
        }
        {
            let st = shared.stream.lock().unwrap();
            assert_eq!(st.subscribers[0].dropped, 4);
        }
        shared.complete_stream();
        let mut out = Vec::new();
        let stats = pump_stream(rx, &mut out).unwrap();
        assert_eq!(stats.blocks, 1, "the bounded queue held one live block");
        assert_eq!(stats.catchups, 0, "blocks after the drop never arrived");
        assert_eq!(out, b"t0\n");
    }

    #[test]
    fn late_subscriber_replays_full_history_of_a_complete_stream() {
        let shared = JobShared::new(JobStatus::Running);
        shared.fan_out(&block(0, "x\n"));
        shared.fan_out(&block(1, "y\n"));
        shared.complete_stream();
        let rx = shared.subscribe(8);
        let mut out = Vec::new();
        pump_stream(rx, &mut out).unwrap();
        assert_eq!(out, b"x\ny\n");
    }

    #[test]
    fn index_stops_at_a_torn_line_and_checkpoints_sort_descending() {
        let dir = std::env::temp_dir().join(format!("dq-serve-job-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let job = JobDir::new(dir.clone());
        job.append_index(10, 120).unwrap();
        job.append_index(20, 260).unwrap();
        std::fs::OpenOptions::new()
            .append(true)
            .open(job.index_path())
            .unwrap()
            .write_all(b"30 gar")
            .unwrap();
        let idx = job.read_index();
        assert_eq!(idx.get(&10), Some(&120));
        assert_eq!(idx.get(&20), Some(&260));
        assert_eq!(idx.len(), 2, "torn third line must be ignored");

        std::fs::write(job.checkpoint_path(10), b"x").unwrap();
        std::fs::write(job.checkpoint_path(40), b"x").unwrap();
        std::fs::write(dir.join("ckpt-tick-bogus.dqsnap"), b"x").unwrap();
        let ticks: Vec<u64> = job.checkpoints_desc().into_iter().map(|(t, _)| t).collect();
        assert_eq!(ticks, vec![40, 10]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
