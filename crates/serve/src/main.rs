//! The `dynaquar-serve` binary: a scenario-serving daemon over a Unix
//! or TCP socket, plus the self-checking `--smoke` mode CI runs.
//!
//! ```text
//! dynaquar-serve --state-dir DIR --unix PATH [--threads N] [--checkpoint-every N]
//! dynaquar-serve --state-dir DIR --tcp 127.0.0.1:7411 [...]
//! dynaquar-serve --smoke [--hosts N] [--subscribers N]
//! ```

use dynaquar_parallel::ParallelConfig;
use dynaquar_serve::daemon::{Daemon, ServeConfig};
use dynaquar_serve::server::{Server, ServerAddr};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    state_dir: Option<PathBuf>,
    unix: Option<PathBuf>,
    tcp: Option<String>,
    threads: Option<usize>,
    checkpoint_every: Option<u64>,
    smoke: bool,
    hosts: usize,
    subscribers: usize,
}

fn usage() -> &'static str {
    "usage:\n  dynaquar-serve --state-dir DIR (--unix PATH | --tcp ADDR) \
     [--threads N] [--checkpoint-every N]\n  dynaquar-serve --smoke [--hosts N] [--subscribers N]"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        state_dir: None,
        unix: None,
        tcp: None,
        threads: None,
        checkpoint_every: None,
        smoke: false,
        hosts: 500,
        subscribers: 2,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value\n{}", usage()))
        };
        match flag.as_str() {
            "--state-dir" => args.state_dir = Some(PathBuf::from(value("--state-dir")?)),
            "--unix" => args.unix = Some(PathBuf::from(value("--unix")?)),
            "--tcp" => args.tcp = Some(value("--tcp")?),
            "--threads" => {
                args.threads = Some(
                    value("--threads")?
                        .parse()
                        .map_err(|_| "--threads needs an integer".to_string())?,
                )
            }
            "--checkpoint-every" => {
                args.checkpoint_every = Some(
                    value("--checkpoint-every")?
                        .parse()
                        .map_err(|_| "--checkpoint-every needs an integer".to_string())?,
                )
            }
            "--smoke" => args.smoke = true,
            "--hosts" => {
                args.hosts = value("--hosts")?
                    .parse()
                    .map_err(|_| "--hosts needs an integer".to_string())?
            }
            "--subscribers" => {
                args.subscribers = value("--subscribers")?
                    .parse()
                    .map_err(|_| "--subscribers needs an integer".to_string())?
            }
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    if args.smoke {
        return match dynaquar_serve::smoke::run_smoke(args.hosts, args.subscribers) {
            Ok(summary) => {
                println!("{summary}");
                ExitCode::SUCCESS
            }
            Err(failure) => {
                eprintln!("smoke FAILED: {failure}");
                ExitCode::FAILURE
            }
        };
    }

    let Some(state_dir) = args.state_dir else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let addr = match (args.unix, args.tcp) {
        (Some(path), None) => ServerAddr::Unix(path),
        (None, Some(spec)) => ServerAddr::Tcp(spec),
        _ => {
            eprintln!("pick exactly one of --unix or --tcp\n{}", usage());
            return ExitCode::FAILURE;
        }
    };

    let mut config = ServeConfig::new(state_dir);
    if let Some(threads) = args.threads {
        config.workers = ParallelConfig::new(threads);
    }
    config.checkpoint_every = args.checkpoint_every;

    let daemon = match Daemon::open(config) {
        Ok(daemon) => daemon,
        Err(e) => {
            eprintln!("failed to open the state directory: {e}");
            return ExitCode::FAILURE;
        }
    };
    for note in daemon.recovery_notes() {
        eprintln!("recovery: {}: {}", note.job, note.note);
    }
    let server = match Server::bind(daemon, addr) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("failed to bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("dynaquar-serve listening on {:?}", server.addr());
    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("server error: {e}");
            ExitCode::FAILURE
        }
    }
}
