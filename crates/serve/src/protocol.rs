//! The wire protocol: newline-delimited JSON requests and responses.
//!
//! One request per line, one response line per request — except
//! `subscribe`, whose acknowledgement line is followed by the raw JSONL
//! event stream until the job completes (the daemon then closes the
//! connection). No async runtime, no framing beyond `\n`.
//!
//! Verbs:
//!
//! | verb       | fields                                         | reply                         |
//! |------------|------------------------------------------------|-------------------------------|
//! | `ping`     |                                                | `{"ok":true,"pong":true,...}` |
//! | `submit`   | `spec` (object) or `spec_toml` (string), `checkpoint_every`? | `{"ok":true,"job":id}` |
//! | `status`   | `job`                                          | status document               |
//! | `list`     |                                                | `{"ok":true,"jobs":[...]}`    |
//! | `wait`     | `job`                                          | status document (blocks)      |
//! | `result`   | `job`                                          | `{"ok":true,"result":{...}}`  |
//! | `subscribe`| `job`                                          | ack, then the raw stream      |
//! | `fork`     | `job`, `at_tick`?, `spec`? (overrides)         | `{"ok":true,"job":new_id,...}`|
//! | `shutdown` |                                                | ack; daemon drains and exits  |
//!
//! Every error is `{"ok":false,"error":{"kind":...,"message":...}}`
//! with [`ServeError::kind`] as the kind — a malformed request can
//! never crash the daemon.

use crate::daemon::Daemon;
use crate::error::ServeError;
use crate::job::StreamMsg;
use dynaquar_core::spec::{emit_json, parse_json, parse_toml, Value};
use std::sync::mpsc::Receiver;

/// What the transport should do after handling one request line.
#[derive(Debug)]
pub enum Reply {
    /// Write this line and keep reading requests.
    Line(String),
    /// Write the ack line, pump the subscription to the peer as a raw
    /// byte stream, then close the connection.
    Stream {
        /// The acknowledgement line.
        ack: String,
        /// The subscription to pump.
        rx: Receiver<StreamMsg>,
    },
    /// Write the ack line, then shut the daemon down.
    Shutdown {
        /// The acknowledgement line.
        ack: String,
    },
}

fn ok_line(mut fields: Vec<(String, Value)>) -> String {
    let mut all = vec![("ok".to_string(), Value::Bool(true))];
    all.append(&mut fields);
    emit_json(&Value::Object(all))
}

fn error_line(e: &ServeError) -> String {
    emit_json(&Value::Object(vec![
        ("ok".into(), Value::Bool(false)),
        (
            "error".into(),
            Value::Object(vec![
                ("kind".into(), Value::Str(e.kind().into())),
                ("message".into(), Value::Str(e.to_string())),
            ]),
        ),
    ]))
}

fn field_str<'a>(req: &'a Value, key: &str) -> Result<&'a str, ServeError> {
    req.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| ServeError::BadRequest {
            reason: format!("request needs a string `{key}` field"),
        })
}

fn field_uint(req: &Value, key: &str) -> Result<Option<u64>, ServeError> {
    match req.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Int(i)) if *i >= 0 => Ok(Some(*i as u64)),
        Some(_) => Err(ServeError::BadRequest {
            reason: format!("`{key}` must be a non-negative integer"),
        }),
    }
}

/// Parses one request line and executes it against the daemon. Always
/// returns a reply — errors become error lines, not panics.
pub fn handle_line(daemon: &Daemon, line: &str) -> Reply {
    match handle_inner(daemon, line) {
        Ok(reply) => reply,
        Err(e) => Reply::Line(error_line(&e)),
    }
}

fn handle_inner(daemon: &Daemon, line: &str) -> Result<Reply, ServeError> {
    let req = parse_json(line)?;
    let verb = field_str(&req, "cmd")?;
    match verb {
        "ping" => {
            let (completed, panicked) = daemon.pool_stats();
            Ok(Reply::Line(ok_line(vec![
                ("pong".into(), Value::Bool(true)),
                ("workers".into(), Value::Int(daemon.workers() as i64)),
                ("jobs".into(), Value::Int(daemon.jobs().len() as i64)),
                ("completed".into(), Value::Int(completed as i64)),
                ("panicked".into(), Value::Int(panicked as i64)),
            ])))
        }
        "submit" => {
            let spec = match (req.get("spec"), req.get("spec_toml")) {
                (Some(spec @ Value::Object(_)), None) => spec.clone(),
                (None, Some(Value::Str(toml))) => parse_toml(toml)?,
                _ => {
                    return Err(ServeError::BadRequest {
                        reason: "submit needs exactly one of `spec` (object) or `spec_toml` \
                                 (string)"
                            .into(),
                    })
                }
            };
            let every = field_uint(&req, "checkpoint_every")?;
            let id = daemon.submit(&spec, every)?;
            Ok(Reply::Line(ok_line(vec![("job".into(), Value::Str(id))])))
        }
        "status" => {
            let status = daemon.status_value(field_str(&req, "job")?)?;
            Ok(Reply::Line(ok_with_status(status)))
        }
        "list" => {
            let mut jobs = Vec::new();
            for id in daemon.jobs() {
                jobs.push(daemon.status_value(&id)?);
            }
            Ok(Reply::Line(ok_line(vec![(
                "jobs".into(),
                Value::Array(jobs),
            )])))
        }
        "wait" => {
            let id = field_str(&req, "job")?;
            // Surface the failure as an error line; a finished job
            // reports its final status document.
            daemon.wait(id)?;
            Ok(Reply::Line(ok_with_status(daemon.status_value(id)?)))
        }
        "result" => {
            let id = field_str(&req, "job")?;
            let text = daemon.result_json(id)?;
            let result = parse_json(&text).map_err(|e| ServeError::Ledger {
                what: format!("persisted result.json does not parse: {e}"),
            })?;
            Ok(Reply::Line(ok_line(vec![
                ("job".into(), Value::Str(id.to_string())),
                ("result".into(), result),
            ])))
        }
        "subscribe" => {
            let id = field_str(&req, "job")?;
            let rx = daemon.subscribe(id)?;
            Ok(Reply::Stream {
                ack: ok_line(vec![
                    ("job".into(), Value::Str(id.to_string())),
                    ("streaming".into(), Value::Bool(true)),
                ]),
                rx,
            })
        }
        "fork" => {
            let id = field_str(&req, "job")?;
            let at_tick = field_uint(&req, "at_tick")?;
            let overrides = match req.get("spec") {
                None => Value::Object(Vec::new()),
                Some(o @ Value::Object(_)) => o.clone(),
                Some(_) => {
                    return Err(ServeError::BadRequest {
                        reason: "`spec` overrides must be an object".into(),
                    })
                }
            };
            let new_id = daemon.fork(id, at_tick, &overrides)?;
            let status = daemon.status_value(&new_id)?;
            Ok(Reply::Line(ok_with_status(status)))
        }
        "shutdown" => Ok(Reply::Shutdown {
            ack: ok_line(vec![("shutting_down".into(), Value::Bool(true))]),
        }),
        other => Err(ServeError::BadRequest {
            reason: format!("unknown verb `{other}`"),
        }),
    }
}

/// Wraps a status document as a top-level ok line (the document's own
/// fields are inlined).
fn ok_with_status(status: Value) -> String {
    match status {
        Value::Object(fields) => ok_line(fields),
        other => ok_line(vec![("status".into(), other)]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::ServeConfig;
    use std::path::PathBuf;

    fn temp_daemon(tag: &str) -> (Daemon, PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "dq-serve-proto-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        (Daemon::open(ServeConfig::new(&dir)).unwrap(), dir)
    }

    fn line(daemon: &Daemon, req: &str) -> Value {
        match handle_line(daemon, req) {
            Reply::Line(text) => parse_json(&text).unwrap(),
            other => panic!("expected a line reply, got {other:?}"),
        }
    }

    const SPEC: &str = r#"{"topology":{"kind":"star","leaves":40},"beta":0.8,
        "horizon":20,"initial_infected":1,"runs":1,"seed":7}"#;

    #[test]
    fn submit_wait_result_round_trip_over_the_protocol() {
        let (daemon, dir) = temp_daemon("roundtrip");
        let reply = line(&daemon, &format!("{{\"cmd\":\"submit\",\"spec\":{SPEC}}}"));
        assert_eq!(reply.get("ok"), Some(&Value::Bool(true)));
        let job = reply.get("job").and_then(Value::as_str).unwrap().to_string();

        let waited = line(&daemon, &format!("{{\"cmd\":\"wait\",\"job\":\"{job}\"}}"));
        assert_eq!(waited.get("status").and_then(Value::as_str), Some("done"));

        let result = line(&daemon, &format!("{{\"cmd\":\"result\",\"job\":\"{job}\"}}"));
        assert!(result.get("result").and_then(|r| r.get("delivered_packets")).is_some());

        let listing = line(&daemon, "{\"cmd\":\"list\"}");
        match listing.get("jobs") {
            Some(Value::Array(jobs)) => assert_eq!(jobs.len(), 1),
            other => panic!("expected a jobs array, got {other:?}"),
        }
        daemon.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn toml_specs_are_accepted_too() {
        let (daemon, dir) = temp_daemon("toml");
        let toml = "beta = 0.8\nhorizon = 20\ninitial_infected = 1\nruns = 1\nseed = 7\n\
                    [topology]\nkind = \"star\"\nleaves = 40\n";
        let escaped = toml.replace('\n', "\\n").replace('"', "\\\"");
        let reply = line(
            &daemon,
            &format!("{{\"cmd\":\"submit\",\"spec_toml\":\"{escaped}\"}}"),
        );
        assert_eq!(reply.get("ok"), Some(&Value::Bool(true)), "{reply:?}");
        daemon.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_requests_become_typed_error_lines() {
        let (daemon, dir) = temp_daemon("badreq");
        for (req, kind) in [
            ("this is not json", "spec"),
            ("{\"cmd\":\"dance\"}", "bad_request"),
            ("{\"no_cmd\":1}", "bad_request"),
            ("{\"cmd\":\"status\",\"job\":\"job-404\"}", "unknown_job"),
            ("{\"cmd\":\"submit\"}", "bad_request"),
            (
                "{\"cmd\":\"submit\",\"spec\":{\"topology\":{\"kind\":\"star\",\"leaves\":0}}}",
                "spec",
            ),
        ] {
            let reply = line(&daemon, req);
            assert_eq!(reply.get("ok"), Some(&Value::Bool(false)), "req: {req}");
            let got = reply
                .get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Value::as_str);
            assert_eq!(got, Some(kind), "req: {req}");
        }
        daemon.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn subscribe_acks_then_streams_and_shutdown_acks() {
        let (daemon, dir) = temp_daemon("stream");
        let reply = line(&daemon, &format!("{{\"cmd\":\"submit\",\"spec\":{SPEC}}}"));
        let job = reply.get("job").and_then(Value::as_str).unwrap().to_string();
        match handle_line(&daemon, &format!("{{\"cmd\":\"subscribe\",\"job\":\"{job}\"}}")) {
            Reply::Stream { ack, rx } => {
                let ack = parse_json(&ack).unwrap();
                assert_eq!(ack.get("streaming"), Some(&Value::Bool(true)));
                daemon.wait(&job).unwrap();
                let mut bytes = Vec::new();
                crate::job::pump_stream(rx, &mut bytes).unwrap();
                assert!(!bytes.is_empty());
            }
            other => panic!("expected a stream reply, got {other:?}"),
        }
        match handle_line(&daemon, "{\"cmd\":\"shutdown\"}") {
            Reply::Shutdown { ack } => {
                assert!(ack.contains("shutting_down"));
            }
            other => panic!("expected a shutdown reply, got {other:?}"),
        }
        daemon.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
