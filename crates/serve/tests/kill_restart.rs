//! Crash-robustness of the serving daemon, black-box:
//!
//! * SIGKILL the real `dynaquar-serve` binary mid-job, restart it
//!   against the same state directory, and the resumed job's final
//!   result and on-disk event stream must be byte-identical to an
//!   uninterrupted run;
//! * corrupt the job ledger with the `faults::chaos` helpers — a bad
//!   checkpoint, a torn event stream, a mangled spec or meta — and the
//!   daemon must recover with typed errors and deterministic fresh
//!   restarts, never a panic.

use dynaquar_core::spec::{parse_json, scenario_from_value, Value};
use dynaquar_netsim::faults::chaos;
use dynaquar_netsim::metrics::TickFeed;
use dynaquar_netsim::sim::{SimResult, Simulator};
use dynaquar_netsim::JsonlEventWriter;
use dynaquar_serve::{
    pump_stream, result_to_json, Client, Daemon, JobDir, JobMeta, JobStatus, ServeConfig,
    ServeError, ServerAddr,
};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dq-kill-restart-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn direct_run(spec: &Value) -> (SimResult, Vec<u8>) {
    let scenario = scenario_from_value(spec).unwrap();
    let world = scenario.build_world();
    let config = scenario.sim_config_for(&world);
    let sim = Simulator::try_new(&world, &config, scenario.worm_behavior(), scenario.base_seed())
        .unwrap();
    let mut writer = JsonlEventWriter::new(Vec::new());
    let result = sim.run_observed(&mut writer);
    (result, writer.finish().unwrap())
}

/// Heavy enough in a debug build (~6k hosts) that a poll-then-SIGKILL
/// reliably lands while the job is mid-run.
fn slow_spec() -> Value {
    parse_json(
        r#"{
            "topology": {"kind": "subnets", "backbone": 8, "subnets": 24,
                         "hosts_per_subnet": 250},
            "beta": 0.7, "horizon": 60, "initial_infected": 12,
            "immunization": {"at_tick": 2, "mu": 0.04},
            "routing": "hier",
            "runs": 1, "seed": 37
        }"#,
    )
    .unwrap()
}

fn spawn_daemon(state: &Path, sock: &Path) -> std::process::Child {
    std::process::Command::new(env!("CARGO_BIN_EXE_dynaquar-serve"))
        .arg("--state-dir")
        .arg(state)
        .arg("--unix")
        .arg(sock)
        .arg("--checkpoint-every")
        .arg("5")
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn dynaquar-serve")
}

#[test]
fn sigkilled_daemon_resumes_the_job_bit_identically() {
    let spec = slow_spec();
    let (direct_result, direct_stream) = direct_run(&spec);

    let state = temp_dir("sigkill");
    let sock = state.join("serve.sock");
    let mut child = spawn_daemon(&state, &sock);
    let addr = ServerAddr::Unix(sock.clone());
    let mut client = Client::connect_retry(&addr, Duration::from_secs(30)).unwrap();
    let job = client.submit(&spec, None).unwrap();

    // Poll until the run is demonstrably mid-flight past a checkpoint
    // boundary, then SIGKILL — no graceful anything.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        assert!(Instant::now() < deadline, "job never reached the kill window");
        let status = client.status(&job).unwrap();
        let state_label = status.get("status").and_then(Value::as_str).unwrap().to_string();
        let tick = status.get("tick").and_then(Value::as_int).unwrap_or(0);
        assert_ne!(
            state_label, "done",
            "job finished before the kill window; pick a slower world"
        );
        if state_label == "running" && tick >= 20 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    child.kill().unwrap();
    child.wait().unwrap();
    drop(client);

    // Restart against the same ledger: recovery must resume the job
    // from its newest durable checkpoint and finish it.
    let mut child = spawn_daemon(&state, &sock);
    let mut client = Client::connect_retry(&addr, Duration::from_secs(30)).unwrap();
    client.wait(&job).unwrap();
    let served = client.result(&job).unwrap();
    assert_eq!(
        dynaquar_core::spec::emit_json(&served),
        result_to_json(&direct_result),
        "resumed result diverged from the uninterrupted run"
    );
    // A late subscriber replays the stitched stream over the socket.
    let sub = Client::connect_retry(&addr, Duration::from_secs(10)).unwrap();
    let replay = sub.subscribe_collect(&job).unwrap();
    assert_eq!(replay, direct_stream, "replayed stream diverged");
    client.shutdown().unwrap();
    let code = child.wait().unwrap();
    assert!(code.success(), "daemon exited with {code:?}");

    // And the ledger's stream file is the uninterrupted bytes exactly.
    let on_disk = std::fs::read(state.join("jobs").join(&job).join("events.jsonl")).unwrap();
    assert_eq!(on_disk, direct_stream, "on-disk stream diverged");
    let _ = std::fs::remove_dir_all(&state);
}

/// The corruption legs run in-process on a hand-built mid-flight
/// ledger: exactly the layout `run_job` persists at its first
/// checkpoint of a 60-leaf star run, with the job still `running`.
fn star_spec() -> Value {
    parse_json(
        r#"{
            "topology": {"kind": "star", "leaves": 60},
            "beta": 0.8, "horizon": 40, "initial_infected": 1,
            "deployment": {"hosts": 1.0},
            "params": {"host_window_ticks": 200, "host_max_new_targets": 1,
                       "host_release_period_ticks": 10},
            "quarantine": {"queue_threshold": 3},
            "runs": 1, "seed": 21
        }"#,
    )
    .unwrap()
}

/// Builds `jobs/job-1` inside `state`: spec, running meta, the event
/// stream through tick 10, the tick-10 checkpoint, and its index line.
/// Returns the stream offset the index records.
fn fabricate_midflight_ledger(state: &Path) -> u64 {
    let spec = star_spec();
    let scenario = scenario_from_value(&spec).unwrap();
    let world = scenario.build_world();
    let config = scenario.sim_config_for(&world);
    let mut sim =
        Simulator::try_new(&world, &config, scenario.worm_behavior(), scenario.base_seed())
            .unwrap();
    let mut stream: Vec<u8> = Vec::new();
    let mut feed = TickFeed::new(|block| stream.extend_from_slice(&block.lines));
    sim.run_until(10, &mut feed);
    drop(feed);
    let snap = sim.snapshot();

    let dir = JobDir::new(state.join("jobs").join("job-1"));
    std::fs::create_dir_all(dir.root()).unwrap();
    dir.write_spec(&spec).unwrap();
    dir.write_meta(&JobMeta {
        id: "job-1".into(),
        status: JobStatus::Running,
        checkpoint_every: Some(10),
        forked_from: None,
    })
    .unwrap();
    let offset = stream.len() as u64;
    std::fs::write(dir.events_path(), &stream).unwrap();
    snap.write_atomic(&dir.checkpoint_path(10)).unwrap();
    dir.append_index(10, offset).unwrap();
    offset
}

/// Opens a daemon over the (possibly corrupted) ledger, waits for
/// job-1, and returns its persisted result JSON plus the final stream
/// bytes. Every leg must end here without a panic.
fn recover_and_finish(state: &Path) -> (String, Vec<u8>, Vec<String>) {
    let daemon = Daemon::open(ServeConfig::new(state)).unwrap();
    let notes: Vec<String> = daemon
        .recovery_notes()
        .iter()
        .map(|n| format!("{}: {}", n.job, n.note))
        .collect();
    daemon.wait("job-1").unwrap();
    let result = daemon.result_json("job-1").unwrap();
    let rx = daemon.subscribe("job-1").unwrap();
    let mut stream = Vec::new();
    pump_stream(rx, &mut stream).unwrap();
    daemon.shutdown();
    (result, stream, notes)
}

#[test]
fn intact_midflight_ledger_resumes_bit_identically() {
    let state = temp_dir("intact");
    fabricate_midflight_ledger(&state);
    let (direct_result, direct_stream) = direct_run(&star_spec());
    let (result, stream, notes) = recover_and_finish(&state);
    assert!(
        notes.iter().all(|n| n.contains("resuming")),
        "clean ledger must only report the resume, got {notes:?}"
    );
    assert_eq!(result, result_to_json(&direct_result));
    assert_eq!(stream, direct_stream, "stitched resume stream diverged");
    let _ = std::fs::remove_dir_all(&state);
}

#[test]
fn corrupt_checkpoint_falls_back_to_a_fresh_deterministic_restart() {
    let state = temp_dir("badckpt");
    fabricate_midflight_ledger(&state);
    let ckpt = state.join("jobs").join("job-1").join("ckpt-tick-10.dqsnap");
    chaos::corrupt_flip_bit(&ckpt, 100).unwrap();
    let (direct_result, direct_stream) = direct_run(&star_spec());
    let (result, stream, notes) = recover_and_finish(&state);
    assert!(
        notes.iter().any(|n| n.contains("job-1") && !n.contains("resuming")),
        "expected a recovery note for the bad checkpoint, got {notes:?}"
    );
    assert_eq!(result, result_to_json(&direct_result));
    assert_eq!(stream, direct_stream);
    // The corrupt file was deleted during recovery; the fresh restart
    // then legitimately re-wrote a (valid) tick-10 checkpoint.
    assert!(dynaquar_netsim::Snapshot::read(&ckpt).is_ok());
    let _ = std::fs::remove_dir_all(&state);
}

#[test]
fn torn_event_stream_invalidates_the_checkpoint_and_restarts_fresh() {
    let state = temp_dir("tornstream");
    let offset = fabricate_midflight_ledger(&state);
    // The stream lost bytes the index claims exist: the checkpoint's
    // offset is no longer backed by the file, so it cannot be used.
    chaos::corrupt_truncate(
        &state.join("jobs").join("job-1").join("events.jsonl"),
        offset / 2,
    )
    .unwrap();
    let (direct_result, direct_stream) = direct_run(&star_spec());
    let (result, stream, notes) = recover_and_finish(&state);
    assert!(!notes.is_empty(), "a torn stream must be noted");
    assert_eq!(result, result_to_json(&direct_result));
    assert_eq!(stream, direct_stream);
    let _ = std::fs::remove_dir_all(&state);
}

#[test]
fn corrupt_spec_fails_the_job_with_a_typed_error_not_a_panic() {
    let state = temp_dir("badspec");
    fabricate_midflight_ledger(&state);
    chaos::corrupt_truncate(&state.join("jobs").join("job-1").join("spec.json"), 10).unwrap();
    let daemon = Daemon::open(ServeConfig::new(&state)).unwrap();
    match daemon.wait("job-1") {
        Err(ServeError::JobFailed { message }) => {
            assert!(
                message.contains("unrecoverable ledger"),
                "unexpected failure message: {message}"
            );
        }
        other => panic!("expected a typed job failure, got {other:?}"),
    }
    // The daemon keeps serving: a fresh submit on the same instance
    // works and ids do not collide with the dead job.
    let id = daemon.submit(&star_spec(), None).unwrap();
    assert_ne!(id, "job-1");
    daemon.wait(&id).unwrap();
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&state);
}

#[test]
fn corrupt_meta_restarts_the_job_fresh_with_a_note() {
    let state = temp_dir("badmeta");
    fabricate_midflight_ledger(&state);
    chaos::corrupt_truncate(&state.join("jobs").join("job-1").join("meta.json"), 3).unwrap();
    let (direct_result, direct_stream) = direct_run(&star_spec());
    let (result, stream, notes) = recover_and_finish(&state);
    assert!(
        notes.iter().any(|n| n.contains("job-1")),
        "expected a note for the mangled meta, got {notes:?}"
    );
    assert_eq!(result, result_to_json(&direct_result));
    assert_eq!(stream, direct_stream);
    let _ = std::fs::remove_dir_all(&state);
}
