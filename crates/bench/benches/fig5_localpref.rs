//! Criterion bench regenerating Figure 5: simulated edge RL for random vs local-preferential worms.
//!
//! The measured unit is one full regeneration of the figure's data at
//! `Quality::Quick` (paper-scale regeneration is the `figures` binary's
//! job; the bench tracks the cost of the underlying pipeline).

use criterion::{criterion_group, criterion_main, Criterion};
use dynaquar_bench::run_experiment;
use dynaquar_core::experiments::Quality;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_localpref");
    group.sample_size(10);
    group.bench_function("fig5", |b| {
        b.iter(|| black_box(run_experiment("fig5", Quality::Quick)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
