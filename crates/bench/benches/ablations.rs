//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * ODE steppers (Euler vs RK4 vs adaptive Dormand–Prince) on the
//!   homogeneous model;
//! * all-pairs routing precomputation cost by topology;
//! * rate-limiter mechanisms judging a scanning workload;
//! * cap-weight normalization modes when building a backbone plan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dynaquar_epidemic::ode::{solve_adaptive, solve_fixed, Euler, FnSystem, Rk4};
use dynaquar_netsim::plan::{Normalization, RateLimitPlan};
use dynaquar_ratelimit::bucket::TokenBucket;
use dynaquar_ratelimit::dns::DnsGuard;
use dynaquar_ratelimit::throttle::VirusThrottle;
use dynaquar_ratelimit::window::UniqueIpWindow;
use dynaquar_ratelimit::{RateLimiter, RemoteKey};
use dynaquar_topology::generators;
use dynaquar_topology::roles::{assign_by_degree, nodes_with_role, Role};
use dynaquar_topology::routing::RoutingTable;
use std::hint::black_box;

fn logistic_system() -> FnSystem<impl Fn(f64, &[f64], &mut [f64])> {
    FnSystem::new(1, |_t, y, dy| dy[0] = 0.8 * y[0] * (1000.0 - y[0]) / 1000.0)
}

fn ode_steppers(c: &mut Criterion) {
    let mut group = c.benchmark_group("ode_steppers");
    group.bench_function("euler_h0.01", |b| {
        let sys = logistic_system();
        b.iter(|| {
            black_box(solve_fixed(&sys, &mut Euler::new(1), 0.0, &[1.0], 50.0, 0.01))
        })
    });
    group.bench_function("rk4_h0.05", |b| {
        let sys = logistic_system();
        b.iter(|| black_box(solve_fixed(&sys, &mut Rk4::new(1), 0.0, &[1.0], 50.0, 0.05)))
    });
    group.bench_function("dormand_prince_tol1e-8", |b| {
        let sys = logistic_system();
        b.iter(|| black_box(solve_adaptive(&sys, 0.0, &[1.0], 50.0, 1e-8).unwrap()))
    });
    group.finish();
}

fn routing_precompute(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing_precompute");
    group.sample_size(10);
    for &n in &[200usize, 500] {
        let graph = generators::barabasi_albert(n, 2, 7).expect("valid");
        group.bench_with_input(BenchmarkId::new("power_law", n), &graph, |b, g| {
            b.iter(|| black_box(RoutingTable::shortest_paths(g)))
        });
    }
    let star = generators::star(500).expect("valid");
    group.bench_function("star_500", |b| {
        b.iter(|| black_box(RoutingTable::shortest_paths(&star.graph)))
    });
    group.finish();
}

/// One simulated scanning burst: 10,000 contacts to fresh addresses.
fn drive_limiter<L: RateLimiter>(limiter: &mut L) -> u32 {
    let mut allowed = 0;
    for k in 0..10_000u64 {
        if limiter.check(k as f64 * 0.01, RemoteKey::new(k)).is_allow() {
            allowed += 1;
        }
    }
    allowed
}

fn limiter_mechanisms(c: &mut Criterion) {
    let mut group = c.benchmark_group("limiter_mechanisms");
    group.bench_function("unique_ip_window_16per5s", |b| {
        b.iter(|| {
            let mut l = UniqueIpWindow::new(5.0, 16).expect("valid");
            black_box(drive_limiter(&mut l))
        })
    });
    group.bench_function("virus_throttle_5per_s", |b| {
        b.iter(|| {
            let mut l = VirusThrottle::williamson_default();
            black_box(drive_limiter(&mut l))
        })
    });
    group.bench_function("dns_guard_6per_min", |b| {
        b.iter(|| {
            let mut l = DnsGuard::ganger_default();
            black_box(drive_limiter(&mut l))
        })
    });
    group.bench_function("token_bucket_10per_s", |b| {
        b.iter(|| {
            let mut l = TokenBucket::new(10.0, 10.0).expect("valid");
            black_box(drive_limiter(&mut l))
        })
    });
    group.finish();
}

fn cap_normalization(c: &mut Criterion) {
    let graph = generators::barabasi_albert(300, 2, 7).expect("valid");
    let routing = RoutingTable::shortest_paths(&graph);
    let roles = assign_by_degree(&graph, 0.05, 0.10);
    let backbone = nodes_with_role(&roles, Role::Backbone);
    let mut group = c.benchmark_group("cap_normalization");
    for (label, norm) in [
        ("max_load", Normalization::MaxLoad),
        ("mean_load", Normalization::MeanLoad),
        ("flat", Normalization::None),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut plan = RateLimitPlan::none();
                plan.weighted_link_caps_with(&graph, &routing, &backbone, 10.0, norm);
                black_box(plan.limited_link_count())
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    ode_steppers,
    routing_precompute,
    limiter_mechanisms,
    cap_normalization
);
criterion_main!(benches);
