//! Criterion bench regenerating Figure 7: analytic delayed immunization.
//!
//! The measured unit is one full regeneration of the figure's data at
//! `Quality::Quick` (paper-scale regeneration is the `figures` binary's
//! job; the bench tracks the cost of the underlying pipeline).

use criterion::{criterion_group, criterion_main, Criterion};
use dynaquar_bench::run_experiment;
use dynaquar_core::experiments::Quality;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_immunization");
    group.sample_size(10);
    group.bench_function("fig7a", |b| {
        b.iter(|| black_box(run_experiment("fig7a", Quality::Quick)))
    });
    group.bench_function("fig7b", |b| {
        b.iter(|| black_box(run_experiment("fig7b", Quality::Quick)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
