//! Scaling benchmark for the routing backends and stepping strategies
//! on large power-law worlds.
//!
//! ```text
//! scale_bench [--sizes N,N,..] [--horizon T] [--seed S] [--initial I]
//!             [--strategy tick|event] [--dense-limit N] [--full]
//!             [--cache N] [--out FILE] [--check FILE] [--tolerance PCT]
//!             [--smoke N --max-rss-mb MB]
//! scale_bench --event-bench FILE [--sizes N,N,..] ...
//! scale_bench --check-event FILE [--tolerance PCT]
//! scale_bench --routing-bench FILE [--horizon T] [--seed S] ...
//! scale_bench --check-routing FILE [--tolerance PCT]
//! scale_bench --single HOSTS BACKEND [--subnet B,S,H] [--horizon T] ...
//! ```
//!
//! For each `hosts × backend` case the orchestrator re-executes itself
//! (`--single`) so every configuration gets its own process — peak RSS
//! is read from `/proc/self/status` `VmHWM`, which is monotone within a
//! process and would otherwise smear the dense table's high-water mark
//! over the lazy cases. Each child builds a Barabási–Albert world under
//! the requested [`RoutingKind`], runs one seeded simulation, and
//! prints a single JSON row; the parent collects the rows into
//! `results/BENCH_scale.json` together with an in-process
//! dense-vs-lazy bit-identity verdict at n = 1000.
//!
//! The default grid runs the dense backend only up to `--dense-limit`
//! (10k: the 8·n² table is 0.8 GB there and 80 GB at 100k); skipped
//! cases are listed, not silent. `--full` forces the complete cross
//! product for machines with the memory to take it.
//!
//! `--check FILE` is the CI guard: re-measures the dense n = 1000 case
//! and fails if its host-ticks/s regressed more than `--tolerance`
//! percent (default 30) against the recorded row, or if the two
//! backends stopped being bit-identical.
//!
//! `--smoke N --max-rss-mb MB` is the large-world CI smoke: builds an
//! n = N world under the lazy backend, runs the configured horizon, and
//! fails if peak RSS exceeded the ceiling.
//!
//! `--event-bench FILE` runs the stepping-strategy axis: for every size
//! the lazy-backend world is simulated under both the tick and the
//! event strategy (same seed, same config — the engines are
//! bit-identical, so the rows differ only in wall clock), the per-size
//! speedup is recorded, and an in-process tick-vs-event bit-identity
//! verdict at n = 1000 rounds out the report, written to FILE
//! (`results/BENCH_event.json` in CI).
//!
//! `--check-event FILE` is the matching CI guard: re-measures the event
//! n = 1000 lazy case against the recorded row under `--tolerance`, and
//! fails if tick and event stopped being bit-identical.
//!
//! `--routing-bench FILE` runs the routing-backend axis on the
//! *hierarchical* subnet worlds where the two-level backend earns its
//! keep (flat power-law graphs don't peel, so the main grid tells that
//! story): dense, lazy, and hier children per world, the per-world
//! hier-over-lazy speedup, the dense n ≈ 10k build time, and an
//! in-process three-way bit-identity verdict, written to FILE
//! (`results/BENCH_routing.json` in CI).
//!
//! `--check-routing FILE` is the matching CI guard: re-measures the
//! hier case on the n ≈ 10k subnet world against the recorded row
//! under `--tolerance`, and fails if dense, lazy, and hier stopped
//! being bit-identical on a subnet world.
//!
//! `--shard-bench FILE` runs the intra-world sharding axis: the busy
//! n ≈ 100k subnet world is simulated by one child per shard count
//! (1, 2, 4 — `DYNAQUAR_SHARDS` is what the children exercise, passed
//! explicitly as `--shards`), the wall-clock speedup over the serial
//! child is recorded together with the machine's honest hardware
//! thread count, and an in-process serial-vs-4-shard bit-identity
//! verdict rounds out the report (`results/BENCH_shard.json` in CI).
//! A smaller n ≈ 10k check world is measured alongside so the CI guard
//! has a cheap reference row.
//!
//! `--check-shard FILE` is the matching CI guard: the bit-identity
//! clause runs unconditionally (sharding must be invisible on any
//! machine); the speedup clause re-measures the n ≈ 10k check world at
//! 1 and 4 shards against the recorded row under `--tolerance`, and
//! only when the machine actually has ≥ 4 hardware threads — on
//! smaller machines it is reported as skipped, never silently passed.

use dynaquar_netsim::config::{SimConfig, WormBehavior};
use dynaquar_netsim::sim::Simulator;
use dynaquar_netsim::strategy::SimStrategy;
use dynaquar_netsim::{ShardSpec, World};
use dynaquar_topology::generators;
use dynaquar_topology::lazy::RoutingKind;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

const GRAPH_SEED: u64 = 42;
const EDGES_PER_NODE: usize = 2;

#[derive(Clone)]
struct Args {
    sizes: Vec<usize>,
    horizon: u64,
    seed: u64,
    initial: usize,
    beta: f64,
    dense_limit: usize,
    full: bool,
    cache: Option<usize>,
    out: PathBuf,
    check: Option<PathBuf>,
    tolerance_pct: f64,
    smoke: Option<usize>,
    max_rss_mb: Option<f64>,
    single: Option<(usize, String)>,
    strategy: SimStrategy,
    event_bench: Option<PathBuf>,
    check_event: Option<PathBuf>,
    routing_bench: Option<PathBuf>,
    check_routing: Option<PathBuf>,
    /// `--subnet B,S,H`: build a hierarchical subnet world instead of
    /// the Barabási–Albert graph (child mode for the routing bench).
    subnet: Option<(usize, usize, usize)>,
    /// `--shards N`: pin the intra-world shard count (child mode for
    /// the shard bench; also keeps the immunization sweep live so the
    /// sharded hash path is on the clock).
    shards: Option<u32>,
    shard_bench: Option<PathBuf>,
    check_shard: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        sizes: vec![1_000, 10_000, 50_000, 100_000],
        horizon: 40,
        seed: 7,
        initial: 10,
        beta: 0.2,
        dense_limit: 10_000,
        full: false,
        cache: None,
        out: PathBuf::from("results/BENCH_scale.json"),
        check: None,
        tolerance_pct: 30.0,
        smoke: None,
        max_rss_mb: None,
        single: None,
        // Explicit tick: the recorded BENCH_scale baselines predate the
        // event engine, and `Auto` would silently flip every world
        // above the size threshold onto it.
        strategy: SimStrategy::Tick,
        event_bench: None,
        check_event: None,
        routing_bench: None,
        check_routing: None,
        subnet: None,
        shards: None,
        shard_bench: None,
        check_shard: None,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |name: &str| {
            argv.next()
                .ok_or_else(|| format!("{name} requires an argument"))
        };
        match arg.as_str() {
            "--sizes" => {
                args.sizes = value("--sizes")?
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|e| format!("{e}")))
                    .collect::<Result<_, _>>()?
            }
            "--horizon" => args.horizon = value("--horizon")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--initial" => args.initial = value("--initial")?.parse().map_err(|e| format!("{e}"))?,
            "--beta" => args.beta = value("--beta")?.parse().map_err(|e| format!("{e}"))?,
            "--dense-limit" => {
                args.dense_limit = value("--dense-limit")?.parse().map_err(|e| format!("{e}"))?
            }
            "--full" => args.full = true,
            "--cache" => args.cache = Some(value("--cache")?.parse().map_err(|e| format!("{e}"))?),
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--check" => args.check = Some(PathBuf::from(value("--check")?)),
            "--tolerance" => {
                args.tolerance_pct = value("--tolerance")?.parse().map_err(|e| format!("{e}"))?
            }
            "--smoke" => args.smoke = Some(value("--smoke")?.parse().map_err(|e| format!("{e}"))?),
            "--max-rss-mb" => {
                args.max_rss_mb = Some(value("--max-rss-mb")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--single" => {
                let hosts = value("--single")?.parse().map_err(|e| format!("{e}"))?;
                let backend = value("--single")?;
                args.single = Some((hosts, backend));
            }
            "--strategy" => args.strategy = value("--strategy")?.parse()?,
            "--event-bench" => args.event_bench = Some(PathBuf::from(value("--event-bench")?)),
            "--check-event" => args.check_event = Some(PathBuf::from(value("--check-event")?)),
            "--routing-bench" => {
                args.routing_bench = Some(PathBuf::from(value("--routing-bench")?))
            }
            "--check-routing" => {
                args.check_routing = Some(PathBuf::from(value("--check-routing")?))
            }
            "--shards" => args.shards = Some(value("--shards")?.parse().map_err(|e| format!("{e}"))?),
            "--shard-bench" => args.shard_bench = Some(PathBuf::from(value("--shard-bench")?)),
            "--check-shard" => args.check_shard = Some(PathBuf::from(value("--check-shard")?)),
            "--subnet" => {
                let spec = value("--subnet")?;
                let parts: Vec<usize> = spec
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|e| format!("{e}")))
                    .collect::<Result<_, _>>()?;
                let [b, s, h] = parts[..] else {
                    return Err("--subnet wants B,S,H".to_string());
                };
                args.subnet = Some((b, s, h));
            }
            "--help" | "-h" => {
                return Err("usage: scale_bench [--sizes N,N,..] [--horizon T] [--seed S] \
                     [--initial I] [--beta B] [--strategy tick|event] [--dense-limit N] [--full] \
                     [--cache N] [--out FILE] [--check FILE] [--tolerance PCT] \
                     [--smoke N --max-rss-mb MB] [--event-bench FILE] [--check-event FILE] \
                     [--routing-bench FILE] [--check-routing FILE] [--subnet B,S,H] \
                     [--shard-bench FILE] [--check-shard FILE] [--shards N]"
                    .to_string())
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if args.sizes.is_empty() {
        return Err("--sizes needs at least one entry".to_string());
    }
    Ok(args)
}

/// Peak resident set of this process in MB, from `/proc/self/status`
/// `VmHWM` (0.0 when unavailable, e.g. off Linux).
fn peak_rss_mb() -> f64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0.0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: f64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0.0);
            return kb / 1024.0;
        }
    }
    0.0
}

/// The [`RoutingKind`] for a named backend; the lazy cache defaults to
/// the same memory-budgeted capacity `Auto` would pick for `hosts`.
fn routing_kind(backend: &str, hosts: usize, cache: Option<usize>) -> Result<RoutingKind, String> {
    match backend {
        "dense" => Ok(RoutingKind::Dense),
        "lazy" => Ok(RoutingKind::Lazy {
            max_cached_destinations: cache
                .unwrap_or_else(|| dynaquar_topology::lazy::default_cache_capacity(hosts)),
        }),
        "hier" => Ok(RoutingKind::Hier),
        other => Err(format!("unknown backend {other} (want dense|lazy|hier)")),
    }
}

struct CaseResult {
    hosts: usize,
    backend: String,
    strategy: SimStrategy,
    shards: Option<u32>,
    build_secs: f64,
    run_secs: f64,
    host_ticks_per_sec: f64,
    peak_rss_mb: f64,
    ever_infected_hosts: u64,
    delivered_packets: u64,
}

impl CaseResult {
    fn to_json_row(&self) -> String {
        let shards = self
            .shards
            .map(|k| format!("\"shards\": {k}, "))
            .unwrap_or_default();
        format!(
            "{{\"hosts\": {}, \"backend\": \"{}\", \"strategy\": \"{}\", {}\
             \"build_secs\": {:.4}, \
             \"run_secs\": {:.4}, \"host_ticks_per_sec\": {:.1}, \"peak_rss_mb\": {:.1}, \
             \"ever_infected_hosts\": {}, \"delivered_packets\": {}}}",
            self.hosts,
            self.backend,
            self.strategy,
            shards,
            self.build_secs,
            self.run_secs,
            self.host_ticks_per_sec,
            self.peak_rss_mb,
            self.ever_infected_hosts,
            self.delivered_packets
        )
    }
}

/// Builds the world and runs one seeded simulation — the body of every
/// child process and of the in-process differential check. Returns the
/// build and run wall-clock times, the infectable host count, and the
/// run result.
fn run_case(
    nodes: usize,
    kind: RoutingKind,
    strategy: SimStrategy,
    args: &Args,
) -> (f64, f64, usize, dynaquar_netsim::sim::SimResult) {
    let t0 = Instant::now();
    let world = match args.subnet {
        Some((b, s, h)) => {
            let topo = generators::SubnetTopologyBuilder::new()
                .backbone_routers(b)
                .subnets(s)
                .hosts_per_subnet(h)
                .build()
                .expect("valid subnet parameters");
            assert_eq!(
                topo.graph.node_count(),
                nodes,
                "--subnet {b},{s},{h} does not match the declared node count"
            );
            World::from_subnets_with(topo, kind)
        }
        None => World::from_power_law_with(
            generators::barabasi_albert(nodes, EDGES_PER_NODE, GRAPH_SEED)
                .expect("valid power-law parameters"),
            0.05,
            0.10,
            kind,
        ),
    };
    let build_secs = t0.elapsed().as_secs_f64();
    let host_count = world.hosts().len();
    let mut builder = SimConfig::builder();
    builder
        .beta(args.beta)
        .horizon(args.horizon)
        .initial_infected(args.initial)
        .strategy(strategy);
    if let Some(shards) = args.shards {
        // Shard-bench cases keep the delayed-immunization sweep live so
        // the sharded per-(tick, host) hash path is on the clock, not
        // just the scan sweep.
        builder.shards(ShardSpec::Fixed(shards)).immunization(
            dynaquar_netsim::config::ImmunizationConfig {
                trigger: dynaquar_netsim::config::ImmunizationTrigger::AtTick(10),
                mu: 0.02,
            },
        );
    }
    let config = builder.build().expect("valid config");
    let t1 = Instant::now();
    let result = Simulator::new(&world, &config, WormBehavior::random(), args.seed).run();
    (build_secs, t1.elapsed().as_secs_f64(), host_count, result)
}

/// Child-process mode: run one case, print one JSON row on stdout.
fn run_single(hosts: usize, backend: &str, args: &Args) -> Result<(), String> {
    let kind = routing_kind(backend, hosts, args.cache)?;
    let (build_secs, run_secs, host_count, result) = run_case(hosts, kind, args.strategy, args);
    let row = CaseResult {
        hosts,
        backend: backend.to_string(),
        strategy: args.strategy,
        shards: args.shards,
        build_secs,
        run_secs,
        host_ticks_per_sec: hosts as f64 * args.horizon as f64 / run_secs.max(1e-9),
        peak_rss_mb: peak_rss_mb(),
        ever_infected_hosts: (result.ever_infected_fraction.final_value() * host_count as f64)
            .round() as u64,
        delivered_packets: result.delivered_packets,
    };
    println!("{}", row.to_json_row());
    Ok(())
}

/// Spawns `--single hosts backend` as a child process and parses its row.
fn spawn_case(
    hosts: usize,
    backend: &str,
    strategy: SimStrategy,
    args: &Args,
) -> Result<String, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let mut cmd = std::process::Command::new(exe);
    cmd.arg("--single")
        .arg(hosts.to_string())
        .arg(backend)
        .arg("--strategy")
        .arg(strategy.to_string())
        .arg("--horizon")
        .arg(args.horizon.to_string())
        .arg("--seed")
        .arg(args.seed.to_string())
        .arg("--initial")
        .arg(args.initial.to_string())
        .arg("--beta")
        .arg(args.beta.to_string());
    if let Some(cache) = args.cache {
        cmd.arg("--cache").arg(cache.to_string());
    }
    if let Some((b, s, h)) = args.subnet {
        cmd.arg("--subnet").arg(format!("{b},{s},{h}"));
    }
    if let Some(shards) = args.shards {
        cmd.arg("--shards").arg(shards.to_string());
    }
    let out = cmd.output().map_err(|e| format!("spawn: {e}"))?;
    std::io::Write::write_all(&mut std::io::stderr(), &out.stderr).ok();
    if !out.status.success() {
        return Err(format!("case {hosts}/{backend} failed: {}", out.status));
    }
    let text = String::from_utf8_lossy(&out.stdout);
    let row = text
        .lines()
        .find(|l| l.trim_start().starts_with('{'))
        .ok_or_else(|| format!("case {hosts}/{backend}: no JSON row in output"))?;
    Ok(row.trim().to_string())
}

/// Pulls the first number following `"key":` out of a JSON text (same
/// helper as the other bench bins; avoids a JSON dependency).
fn json_f64(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = text.find(&needle)?;
    let rest = text[at + needle.len()..].trim_start().strip_prefix(':')?;
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The recorded row for `hosts`+`backend` inside a BENCH_scale report.
fn find_row<'t>(text: &'t str, hosts: usize, backend: &str) -> Option<&'t str> {
    let needle = format!("\"hosts\": {hosts}, \"backend\": \"{backend}\"");
    let at = text.find(&needle)?;
    let end = text[at..].find('}').map(|e| at + e)?;
    Some(&text[at..end])
}

/// The recorded row for `hosts`+`backend`+`strategy` inside a
/// BENCH_event report (rows there carry the strategy axis).
fn find_strategy_row<'t>(
    text: &'t str,
    hosts: usize,
    backend: &str,
    strategy: SimStrategy,
) -> Option<&'t str> {
    let needle =
        format!("\"hosts\": {hosts}, \"backend\": \"{backend}\", \"strategy\": \"{strategy}\"");
    let at = text.find(&needle)?;
    let end = text[at..].find('}').map(|e| at + e)?;
    Some(&text[at..end])
}

/// In-process differential: dense, lazy, and hier must produce `==`
/// SimResults on the same n = 1000 world-seed-config triple.
fn backends_bit_identical(args: &Args) -> bool {
    let (_, _, _, dense) = run_case(1_000, RoutingKind::Dense, args.strategy, args);
    let (_, _, _, lazy) = run_case(
        1_000,
        RoutingKind::Lazy {
            max_cached_destinations: 64,
        },
        args.strategy,
        args,
    );
    let (_, _, _, hier) = run_case(1_000, RoutingKind::Hier, args.strategy, args);
    dense == lazy && dense == hier
}

/// In-process differential on the hier backend's home turf: a subnet
/// world (n = 491, backbone ring core) under all three backends.
fn subnet_backends_bit_identical(args: &Args) -> bool {
    let mut sub = args.clone();
    sub.subnet = Some((3, 8, 60));
    let n = 3 + 8 * 61;
    let (_, _, _, dense) = run_case(n, RoutingKind::Dense, args.strategy, &sub);
    let (_, _, _, lazy) = run_case(
        n,
        RoutingKind::Lazy {
            max_cached_destinations: 64,
        },
        args.strategy,
        &sub,
    );
    let (_, _, _, hier) = run_case(n, RoutingKind::Hier, args.strategy, &sub);
    dense == lazy && dense == hier
}

/// In-process differential: the tick and event stepping strategies must
/// produce `==` SimResults on the same n = 1000 lazy world.
fn strategies_bit_identical(args: &Args) -> bool {
    let kind = RoutingKind::Lazy {
        max_cached_destinations: 64,
    };
    let (_, _, _, tick) = run_case(1_000, kind, SimStrategy::Tick, args);
    let (_, _, _, event) = run_case(1_000, kind, SimStrategy::Event, args);
    tick == event
}

/// The `--event-bench` mode: the stepping-strategy axis on the lazy
/// backend, one tick and one event child per size, plus the per-size
/// speedup and an in-process bit-identity verdict.
fn run_event_bench(out: &std::path::Path, args: &Args) -> ExitCode {
    println!(
        "strategy benchmark: sizes {:?}, horizon {}, seed {}, {} initial infections, beta {}",
        args.sizes, args.horizon, args.seed, args.initial, args.beta
    );
    let mut rows: Vec<String> = Vec::new();
    let mut speedups: Vec<(usize, f64)> = Vec::new();
    for &n in &args.sizes {
        let mut tps = [0.0f64; 2];
        for (k, strategy) in [SimStrategy::Tick, SimStrategy::Event].into_iter().enumerate() {
            match spawn_case(n, "lazy", strategy, args) {
                Ok(row) => {
                    println!("  {row}");
                    tps[k] = json_f64(&row, "host_ticks_per_sec").unwrap_or(0.0);
                    rows.push(row);
                }
                Err(msg) => {
                    eprintln!("{msg}");
                    return ExitCode::FAILURE;
                }
            }
        }
        let speedup = if tps[0] > 0.0 { tps[1] / tps[0] } else { 0.0 };
        println!("  n={n}: event-over-tick speedup {speedup:.1}x");
        speedups.push((n, speedup));
    }

    let identical = strategies_bit_identical(args);
    println!(
        "tick vs event at n=1000: {}",
        if identical { "bit-identical" } else { "DIVERGED" }
    );

    let mut json = String::from("{\n");
    json.push_str("  \"benchmark\": \"stepping_strategy_scaling\",\n");
    json.push_str(&format!(
        "  \"topology\": \"barabasi_albert(m={EDGES_PER_NODE}, seed={GRAPH_SEED})\",\n"
    ));
    json.push_str("  \"backend\": \"lazy\",\n");
    json.push_str(&format!("  \"horizon\": {},\n", args.horizon));
    json.push_str(&format!("  \"seed\": {},\n", args.seed));
    json.push_str(&format!("  \"initial_infected\": {},\n", args.initial));
    json.push_str(&format!("  \"beta\": {},\n", args.beta));
    json.push_str(&format!(
        "  \"tick_event_bit_identical_at_1000\": {identical},\n"
    ));
    json.push_str("  \"speedups\": [");
    json.push_str(
        &speedups
            .iter()
            .map(|(n, x)| format!("{{\"hosts\": {n}, \"event_over_tick\": {x:.2}}}"))
            .collect::<Vec<_>>()
            .join(", "),
    );
    json.push_str("],\n");
    json.push_str("  \"cases\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {row}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    if let Some(dir) = out.parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("cannot create {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(e) = std::fs::write(out, json) {
        eprintln!("cannot write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {}", out.display());
    if identical {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The hierarchical worlds the routing bench sweeps: the paper-shaped
/// subnet topology at n ≈ 10k, 100k, and 1M (`n = B + S·(H+1)`). All
/// peel to their backbone ring, so the hier backend routes them off a
/// tiny dense core table while lazy re-runs whole-graph BFS on every
/// cache miss — the gap this bench exists to record.
const ROUTING_WORLDS: [(usize, usize, usize); 3] =
    [(8, 40, 250), (32, 400, 250), (64, 4000, 250)];

/// Dense cutoff for the routing bench: the n ≈ 10k world's table is
/// compact-packed (4·n² = 0.4 GB) and builds in seconds — recording
/// that build time is part of the report — while at n ≈ 100k the
/// wide-packed table alone is 80 GB. `--full` overrides.
const ROUTING_DENSE_LIMIT: usize = 20_000;

/// The `--routing-bench` mode: dense/lazy/hier children on hierarchical
/// subnet worlds, per-world hier-over-lazy speedup, plus an in-process
/// three-way bit-identity verdict on a small subnet world.
fn run_routing_bench(out: &std::path::Path, args: &Args) -> ExitCode {
    println!(
        "routing benchmark: subnet worlds {ROUTING_WORLDS:?}, horizon {}, seed {}, \
         {} initial infections, beta {}",
        args.horizon, args.seed, args.initial, args.beta
    );
    let mut rows: Vec<String> = Vec::new();
    let mut skipped: Vec<String> = Vec::new();
    let mut speedups: Vec<(usize, f64)> = Vec::new();
    let mut dense_build_10k = f64::NAN;
    for (b, s, h) in ROUTING_WORLDS {
        let n = b + s * (h + 1);
        let mut sub = args.clone();
        sub.subnet = Some((b, s, h));
        let mut tps = [0.0f64; 2]; // lazy, hier
        for backend in ["dense", "lazy", "hier"] {
            if backend == "dense" && n > ROUTING_DENSE_LIMIT && !args.full {
                let gb = 8.0 * (n as f64) * (n as f64) / 1e9;
                skipped.push(format!("{n}/dense (table alone {gb:.0} GB; use --full)"));
                continue;
            }
            match spawn_case(n, backend, args.strategy, &sub) {
                Ok(row) => {
                    println!("  {row}");
                    match backend {
                        "lazy" => tps[0] = json_f64(&row, "host_ticks_per_sec").unwrap_or(0.0),
                        "hier" => tps[1] = json_f64(&row, "host_ticks_per_sec").unwrap_or(0.0),
                        _ => {
                            if n <= ROUTING_DENSE_LIMIT {
                                dense_build_10k =
                                    json_f64(&row, "build_secs").unwrap_or(f64::NAN);
                            }
                        }
                    }
                    rows.push(row);
                }
                Err(msg) => {
                    eprintln!("{msg}");
                    return ExitCode::FAILURE;
                }
            }
        }
        let speedup = if tps[0] > 0.0 { tps[1] / tps[0] } else { 0.0 };
        println!("  n={n}: hier-over-lazy speedup {speedup:.1}x");
        speedups.push((n, speedup));
    }
    for s in &skipped {
        println!("  skipped {s}");
    }

    let identical = subnet_backends_bit_identical(args);
    println!(
        "dense vs lazy vs hier on the n=491 subnet world: {}",
        if identical { "bit-identical" } else { "DIVERGED" }
    );

    let mut json = String::from("{\n");
    json.push_str("  \"benchmark\": \"hierarchical_routing_scaling\",\n");
    json.push_str("  \"topology\": \"subnet(backbone, subnets, hosts_per_subnet)\",\n");
    json.push_str("  \"worlds\": [");
    json.push_str(
        &ROUTING_WORLDS
            .iter()
            .map(|(b, s, h)| format!("[{b}, {s}, {h}]"))
            .collect::<Vec<_>>()
            .join(", "),
    );
    json.push_str("],\n");
    json.push_str(&format!("  \"horizon\": {},\n", args.horizon));
    json.push_str(&format!("  \"seed\": {},\n", args.seed));
    json.push_str(&format!("  \"initial_infected\": {},\n", args.initial));
    json.push_str(&format!("  \"beta\": {},\n", args.beta));
    json.push_str(&format!(
        "  \"backends_bit_identical_on_subnet_world\": {identical},\n"
    ));
    json.push_str(&format!(
        "  \"dense_build_secs_at_10k\": {dense_build_10k:.4},\n"
    ));
    json.push_str("  \"hier_over_lazy\": [");
    json.push_str(
        &speedups
            .iter()
            .map(|(n, x)| format!("{{\"hosts\": {n}, \"speedup\": {x:.2}}}"))
            .collect::<Vec<_>>()
            .join(", "),
    );
    json.push_str("],\n");
    json.push_str("  \"skipped\": [");
    json.push_str(
        &skipped
            .iter()
            .map(|s| format!("\"{s}\""))
            .collect::<Vec<_>>()
            .join(", "),
    );
    json.push_str("],\n");
    json.push_str("  \"cases\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {row}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    if let Some(dir) = out.parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("cannot create {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(e) = std::fs::write(out, json) {
        eprintln!("cannot write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {}", out.display());
    if identical {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The shard bench's main world: the busy n ≈ 100k hierarchical subnet
/// topology (100,000 hosts behind 400 subnet routers), big enough that
/// every sharded sweep is far above its engagement threshold.
const SHARD_WORLD: (usize, usize, usize) = (32, 400, 250);

/// The cheap n ≈ 10k reference world measured alongside, so the CI
/// guard can re-measure shard speedup without paying for 100k hosts.
const SHARD_CHECK_WORLD: (usize, usize, usize) = (8, 40, 250);

/// Shard counts the bench sweeps; children run `--shards k` explicitly
/// (the same knob `DYNAQUAR_SHARDS` sets for everything else).
const SHARD_COUNTS: [u32; 3] = [1, 2, 4];

/// Busier-than-default epidemic for the shard cases: enough initial
/// infections that the scan sweep crosses its 256-scanner sharding
/// threshold within a few ticks.
fn shard_case_args(args: &Args, world: (usize, usize, usize)) -> Args {
    let mut sub = args.clone();
    sub.subnet = Some(world);
    sub.beta = 0.5;
    sub.initial = 400;
    sub
}

/// The machine's honest hardware thread count — recorded verbatim in
/// `BENCH_shard.json` so a flat speedup column on a small machine reads
/// as a hardware ceiling, not an engine regression.
fn hardware_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |p| p.get())
}

/// In-process differential: a serial and a 4-shard run of the same
/// n = 4044 subnet world must produce `==` SimResults. The world is
/// small enough to be quick but crosses the 256-scanner threshold, so
/// the sharded stage-A sweep genuinely runs.
fn shards_bit_identical(args: &Args) -> bool {
    let mut sub = args.clone();
    sub.subnet = Some((4, 40, 100));
    sub.beta = 0.8;
    sub.initial = 50;
    let n = 4 + 40 * 101;
    let mut serial = sub.clone();
    serial.shards = Some(1);
    let mut sharded = sub;
    sharded.shards = Some(4);
    let (_, _, _, a) = run_case(n, RoutingKind::Hier, args.strategy, &serial);
    let (_, _, _, b) = run_case(n, RoutingKind::Hier, args.strategy, &sharded);
    a == b
}

/// Spawns the shard-count sweep for one subnet world and returns the
/// rows plus per-count speedups over the serial child. `rows_identical`
/// reports whether every child's result projections matched the serial
/// ones — a cross-process identity check on top of the in-process one.
#[allow(clippy::type_complexity)]
fn spawn_shard_sweep(
    world: (usize, usize, usize),
    args: &Args,
) -> Result<(Vec<String>, Vec<(u32, f64)>, bool), String> {
    let (b, s, h) = world;
    let n = b + s * (h + 1);
    let sub = shard_case_args(args, world);
    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    let mut serial_secs = f64::NAN;
    let mut serial_projection = (f64::NAN, f64::NAN);
    let mut rows_identical = true;
    for k in SHARD_COUNTS {
        let mut child = sub.clone();
        child.shards = Some(k);
        let row = spawn_case(n, "hier", args.strategy, &child)?;
        println!("  {row}");
        let run_secs = json_f64(&row, "run_secs").unwrap_or(f64::NAN);
        let ever = json_f64(&row, "ever_infected_hosts").unwrap_or(f64::NAN);
        let delivered = json_f64(&row, "delivered_packets").unwrap_or(f64::NAN);
        if k == 1 {
            serial_secs = run_secs;
            serial_projection = (ever, delivered);
        } else {
            rows_identical &= serial_projection == (ever, delivered);
        }
        let speedup = serial_secs / run_secs.max(1e-9);
        if k > 1 {
            println!("  n={n} shards={k}: speedup {speedup:.2}x over the serial child");
        }
        speedups.push((k, speedup));
        rows.push(row);
    }
    Ok((rows, speedups, rows_identical))
}

/// The `--shard-bench` mode: the intra-world sharding axis on the busy
/// n ≈ 100k subnet world plus the n ≈ 10k reference, an in-process
/// bit-identity verdict, and the honest hardware thread count.
fn run_shard_bench(out: &std::path::Path, args: &Args) -> ExitCode {
    let hw = hardware_threads();
    println!(
        "shard benchmark: subnet worlds {SHARD_WORLD:?} and {SHARD_CHECK_WORLD:?}, \
         shard counts {SHARD_COUNTS:?}, horizon {}, seed {}, {} hardware thread(s)",
        args.horizon, args.seed, hw
    );
    if hw < *SHARD_COUNTS.last().unwrap() as usize {
        println!(
            "note: fewer hardware threads than shards — speedups below record the \
             hardware ceiling, not the engine's scaling"
        );
    }
    let (mut rows, speedups, main_identical) = match spawn_shard_sweep(SHARD_WORLD, args) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let (check_rows, check_speedups, check_identical) =
        match spawn_shard_sweep(SHARD_CHECK_WORLD, args) {
            Ok(r) => r,
            Err(msg) => {
                eprintln!("{msg}");
                return ExitCode::FAILURE;
            }
        };
    rows.extend(check_rows);
    let check_speedup_at_4 = check_speedups
        .iter()
        .find(|(k, _)| *k == 4)
        .map_or(f64::NAN, |(_, x)| *x);

    let identical = main_identical && check_identical && shards_bit_identical(args);
    println!(
        "serial vs 4-shard sweeps: {}",
        if identical { "bit-identical" } else { "DIVERGED" }
    );

    let (b, s, h) = SHARD_WORLD;
    let (cb, cs, ch) = SHARD_CHECK_WORLD;
    let mut json = String::from("{\n");
    json.push_str("  \"benchmark\": \"intra_world_sharding\",\n");
    json.push_str("  \"topology\": \"subnet(backbone, subnets, hosts_per_subnet)\",\n");
    json.push_str(&format!("  \"world\": [{b}, {s}, {h}],\n"));
    json.push_str(&format!("  \"check_world\": [{cb}, {cs}, {ch}],\n"));
    json.push_str(&format!("  \"hardware_threads\": {hw},\n"));
    json.push_str(&format!("  \"horizon\": {},\n", args.horizon));
    json.push_str(&format!("  \"seed\": {},\n", args.seed));
    json.push_str("  \"beta\": 0.5,\n  \"initial_infected\": 400,\n");
    json.push_str(&format!("  \"shards_bit_identical\": {identical},\n"));
    json.push_str("  \"speedups\": [");
    json.push_str(
        &speedups
            .iter()
            .map(|(k, x)| format!("{{\"shards\": {k}, \"speedup\": {x:.2}}}"))
            .collect::<Vec<_>>()
            .join(", "),
    );
    json.push_str("],\n");
    json.push_str(&format!(
        "  \"check_speedup_at_4\": {check_speedup_at_4:.2},\n"
    ));
    json.push_str("  \"cases\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {row}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    if let Some(dir) = out.parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("cannot create {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(e) = std::fs::write(out, json) {
        eprintln!("cannot write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {}", out.display());
    if identical {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The `--check-shard` CI guard: bit-identity unconditionally, shard
/// speedup on the reference world only where the hardware can show it.
fn run_check_shard(baseline_path: &std::path::Path, args: &Args) -> ExitCode {
    if !shards_bit_identical(args) {
        eprintln!("REGRESSION: serial and 4-shard sweeps diverged on the n=4044 subnet world");
        return ExitCode::FAILURE;
    }
    println!("serial and 4-shard sweeps bit-identical on the n=4044 subnet world");

    let hw = hardware_threads();
    if hw < 4 {
        println!("speedup clause skipped: 4 shards need 4 hardware threads, machine has {hw}");
        return ExitCode::SUCCESS;
    }
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {}: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
    };
    let Some(recorded) = json_f64(&text, "check_speedup_at_4") else {
        eprintln!(
            "no check_speedup_at_4 in {} — regenerate with --shard-bench",
            baseline_path.display()
        );
        return ExitCode::FAILURE;
    };
    let sub = shard_case_args(args, SHARD_CHECK_WORLD);
    let (b, s, h) = SHARD_CHECK_WORLD;
    let n = b + s * (h + 1);
    let mut secs = [f64::NAN; 2];
    for (i, k) in [1u32, 4].into_iter().enumerate() {
        let mut child = sub.clone();
        child.shards = Some(k);
        match spawn_case(n, "hier", args.strategy, &child) {
            Ok(row) => secs[i] = json_f64(&row, "run_secs").unwrap_or(f64::NAN),
            Err(msg) => {
                eprintln!("{msg}");
                return ExitCode::FAILURE;
            }
        }
    }
    let measured = secs[0] / secs[1].max(1e-9);
    let pct = if recorded > 0.0 {
        (1.0 - measured / recorded) * 100.0
    } else {
        0.0
    };
    println!(
        "4-shard n={n}: speedup {measured:.2}x vs recorded {recorded:.2}x \
         (slowdown {pct:+.1}%, tolerance {:.1}%)",
        args.tolerance_pct
    );
    if pct > args.tolerance_pct {
        eprintln!(
            "REGRESSION: 4-shard speedup fell {pct:.1}% > {:.1}% tolerance",
            args.tolerance_pct
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    // Child mode.
    if let Some((hosts, backend)) = args.single.clone() {
        return match run_single(hosts, &backend, &args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("{msg}");
                ExitCode::FAILURE
            }
        };
    }

    // CI smoke: one lazy large-world case under a memory ceiling.
    if let Some(n) = args.smoke {
        let Some(ceiling) = args.max_rss_mb else {
            eprintln!("--smoke requires --max-rss-mb");
            return ExitCode::FAILURE;
        };
        let row = match spawn_case(n, "lazy", args.strategy, &args) {
            Ok(r) => r,
            Err(msg) => {
                eprintln!("{msg}");
                return ExitCode::FAILURE;
            }
        };
        let rss = json_f64(&row, "peak_rss_mb").unwrap_or(f64::INFINITY);
        println!("{row}");
        println!("smoke n={n}: peak RSS {rss:.1} MB (ceiling {ceiling:.1} MB)");
        if rss > ceiling {
            eprintln!("REGRESSION: lazy-backend smoke exceeded the memory ceiling");
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }

    // Stepping-strategy benchmark: lazy backend, tick vs event per size.
    if let Some(out) = args.event_bench.clone() {
        return run_event_bench(&out, &args);
    }

    // Routing-backend benchmark on hierarchical subnet worlds.
    if let Some(out) = args.routing_bench.clone() {
        return run_routing_bench(&out, &args);
    }

    // Intra-world sharding benchmark on the busy subnet world.
    if let Some(out) = args.shard_bench.clone() {
        return run_shard_bench(&out, &args);
    }

    // CI guard for the shard bench: bit-identity always, speedup where
    // the hardware allows.
    if let Some(baseline_path) = args.check_shard.clone() {
        return run_check_shard(&baseline_path, &args);
    }

    // CI guard for the routing bench: hier n≈10k perf + three-way
    // bit-identity on a subnet world.
    if let Some(baseline_path) = &args.check_routing {
        let text = match std::fs::read_to_string(baseline_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {}: {e}", baseline_path.display());
                return ExitCode::FAILURE;
            }
        };
        let (b, s, h) = ROUTING_WORLDS[0];
        let n = b + s * (h + 1);
        let Some(recorded) =
            find_row(&text, n, "hier").and_then(|row| json_f64(row, "host_ticks_per_sec"))
        else {
            eprintln!(
                "no hier n={n} row in {} — regenerate with --routing-bench",
                baseline_path.display()
            );
            return ExitCode::FAILURE;
        };
        let mut sub = args.clone();
        sub.subnet = Some((b, s, h));
        let row = match spawn_case(n, "hier", args.strategy, &sub) {
            Ok(r) => r,
            Err(msg) => {
                eprintln!("{msg}");
                return ExitCode::FAILURE;
            }
        };
        let measured = json_f64(&row, "host_ticks_per_sec").unwrap_or(0.0);
        let pct = if recorded > 0.0 {
            (1.0 - measured / recorded) * 100.0
        } else {
            0.0
        };
        println!(
            "hier n={n} subnet: {measured:.0} host-ticks/s vs recorded {recorded:.0} \
             (slowdown {pct:+.1}%, tolerance {:.1}%)",
            args.tolerance_pct
        );
        if pct > args.tolerance_pct {
            eprintln!(
                "REGRESSION: hier n={n} slowed {pct:.1}% > {:.1}% tolerance",
                args.tolerance_pct
            );
            return ExitCode::FAILURE;
        }
        if !subnet_backends_bit_identical(&args) {
            eprintln!("REGRESSION: dense, lazy, and hier diverged on the subnet world");
            return ExitCode::FAILURE;
        }
        println!("dense, lazy, and hier backends bit-identical on the subnet world");
        return ExitCode::SUCCESS;
    }

    // CI guard for the strategy bench: event n=1000 perf + tick-vs-event
    // bit-identity.
    if let Some(baseline_path) = &args.check_event {
        let text = match std::fs::read_to_string(baseline_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {}: {e}", baseline_path.display());
                return ExitCode::FAILURE;
            }
        };
        // n = 10000: the n = 1000 event runs finish in single-digit
        // milliseconds, where timer noise swamps any real regression.
        let Some(recorded) = find_strategy_row(&text, 10_000, "lazy", SimStrategy::Event)
            .and_then(|row| json_f64(row, "host_ticks_per_sec"))
        else {
            eprintln!(
                "no event n=10000 lazy row in {} — regenerate with --event-bench",
                baseline_path.display()
            );
            return ExitCode::FAILURE;
        };
        let row = match spawn_case(10_000, "lazy", SimStrategy::Event, &args) {
            Ok(r) => r,
            Err(msg) => {
                eprintln!("{msg}");
                return ExitCode::FAILURE;
            }
        };
        let measured = json_f64(&row, "host_ticks_per_sec").unwrap_or(0.0);
        let pct = if recorded > 0.0 {
            (1.0 - measured / recorded) * 100.0
        } else {
            0.0
        };
        println!(
            "event n=10000 lazy: {measured:.0} host-ticks/s vs recorded {recorded:.0} \
             (slowdown {pct:+.1}%, tolerance {:.1}%)",
            args.tolerance_pct
        );
        if pct > args.tolerance_pct {
            eprintln!(
                "REGRESSION: event n=10000 slowed {pct:.1}% > {:.1}% tolerance",
                args.tolerance_pct
            );
            return ExitCode::FAILURE;
        }
        if !strategies_bit_identical(&args) {
            eprintln!("REGRESSION: tick and event strategies diverged at n=1000");
            return ExitCode::FAILURE;
        }
        println!("tick and event strategies bit-identical at n=1000");
        return ExitCode::SUCCESS;
    }

    // CI guard: dense n=1000 perf + bit-identity.
    if let Some(baseline_path) = &args.check {
        let text = match std::fs::read_to_string(baseline_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {}: {e}", baseline_path.display());
                return ExitCode::FAILURE;
            }
        };
        let Some(recorded) =
            find_row(&text, 1_000, "dense").and_then(|row| json_f64(row, "host_ticks_per_sec"))
        else {
            eprintln!(
                "no dense n=1000 row in {} — regenerate the baseline",
                baseline_path.display()
            );
            return ExitCode::FAILURE;
        };
        let row = match spawn_case(1_000, "dense", args.strategy, &args) {
            Ok(r) => r,
            Err(msg) => {
                eprintln!("{msg}");
                return ExitCode::FAILURE;
            }
        };
        let measured = json_f64(&row, "host_ticks_per_sec").unwrap_or(0.0);
        let pct = if recorded > 0.0 {
            (1.0 - measured / recorded) * 100.0
        } else {
            0.0
        };
        println!(
            "dense n=1000: {measured:.0} host-ticks/s vs recorded {recorded:.0} \
             (slowdown {pct:+.1}%, tolerance {:.1}%)",
            args.tolerance_pct
        );
        if pct > args.tolerance_pct {
            eprintln!(
                "REGRESSION: dense n=1000 slowed {pct:.1}% > {:.1}% tolerance",
                args.tolerance_pct
            );
            return ExitCode::FAILURE;
        }
        if !backends_bit_identical(&args) {
            eprintln!("REGRESSION: routing backends diverged at n=1000");
            return ExitCode::FAILURE;
        }
        println!("dense, lazy, and hier backends bit-identical at n=1000");
        return ExitCode::SUCCESS;
    }

    // Full benchmark grid.
    println!(
        "scale benchmark: sizes {:?}, horizon {}, seed {}, {} initial infections, beta {}",
        args.sizes, args.horizon, args.seed, args.initial, args.beta
    );
    let mut rows: Vec<String> = Vec::new();
    let mut skipped: Vec<String> = Vec::new();
    for &n in &args.sizes {
        for backend in ["dense", "lazy", "hier"] {
            // Flat power-law graphs (minimum degree 2) don't peel, so
            // the hier backend's core table is the full dense table —
            // same memory wall, same skip rule. Its subnet-world story
            // lives in `--routing-bench`.
            if (backend == "dense" || backend == "hier") && n > args.dense_limit && !args.full {
                let gb = 8.0 * (n as f64) * (n as f64) / 1e9;
                skipped.push(format!("{n}/{backend} (table alone {gb:.0} GB; use --full)"));
                continue;
            }
            match spawn_case(n, backend, args.strategy, &args) {
                Ok(row) => {
                    println!("  {row}");
                    rows.push(row);
                }
                Err(msg) => {
                    eprintln!("{msg}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    for s in &skipped {
        println!("  skipped {s}");
    }

    let identical = backends_bit_identical(&args);
    println!(
        "dense vs lazy vs hier at n=1000: {}",
        if identical {
            "bit-identical"
        } else {
            "DIVERGED"
        }
    );

    let mut json = String::from("{\n");
    json.push_str("  \"benchmark\": \"routing_backend_scaling\",\n");
    json.push_str(&format!(
        "  \"topology\": \"barabasi_albert(m={EDGES_PER_NODE}, seed={GRAPH_SEED})\",\n"
    ));
    json.push_str(&format!("  \"horizon\": {},\n", args.horizon));
    json.push_str(&format!("  \"seed\": {},\n", args.seed));
    json.push_str(&format!("  \"initial_infected\": {},\n", args.initial));
    json.push_str(&format!("  \"beta\": {},\n", args.beta));
    json.push_str(&format!(
        "  \"backends_bit_identical_at_1000\": {identical},\n"
    ));
    json.push_str("  \"skipped\": [");
    json.push_str(
        &skipped
            .iter()
            .map(|s| format!("\"{s}\""))
            .collect::<Vec<_>>()
            .join(", "),
    );
    json.push_str("],\n");
    json.push_str("  \"cases\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {row}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    if let Some(dir) = args.out.parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("cannot create {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(e) = std::fs::write(&args.out, json) {
        eprintln!("cannot write {}: {e}", args.out.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {}", args.out.display());
    if identical {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
