//! Serial-vs-pooled ensemble benchmark for the deterministic parallel
//! runner.
//!
//! ```text
//! parallel_bench [--seeds N] [--horizon T] [--threads a,b,c] [--out FILE]
//! parallel_bench --check FILE [--tolerance PCT]
//! ```
//!
//! Runs the same seeded ensemble (default: 32 seeds on a 399-leaf star)
//! serially and on worker pools of increasing size, verifies every pooled
//! result is **bit-identical** to the serial one, and reports wall clock,
//! speedup, and mean worker utilization per thread count. The table is
//! printed and also written as JSON (default `results/BENCH_parallel.json`)
//! so speedup regressions are diffable.
//!
//! Two speedup columns, because one number misleads: the **ensemble**
//! speedup (serial wall / pooled wall) is capped at
//! `min(threads, seeds)` — with 2 seeds on an 8-thread pool it tops out
//! at 2×, which reads as a scaling failure when it's a scheduling
//! ceiling. The **per-run** speedup (serial wall / summed worker busy
//! time) measures what each run costs inside the pool: near 1.0 means
//! pooling adds no per-run overhead regardless of how many seeds there
//! were to schedule. Each row also records the `schedulable` ceiling so
//! a flat ensemble column is attributable at a glance.
//!
//! `--check FILE` is the CI guard: re-runs the largest recorded thread
//! count, always re-verifies bit-identity against the serial baseline,
//! and — only when the machine actually has that many hardware threads —
//! fails if the ensemble speedup regressed more than `--tolerance`
//! percent (default 30) against the recorded row. On smaller machines
//! the perf clause is reported as skipped, not silently passed.
//!
//! Exit code is nonzero if any pooled run diverges from the serial
//! baseline — the determinism contract is part of the benchmark.

use dynaquar_netsim::config::{SimConfig, WormBehavior};
use dynaquar_netsim::runner::{run_averaged_parallel, AveragedResult};
use dynaquar_netsim::World;
use dynaquar_parallel::ParallelConfig;
use dynaquar_topology::generators;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

struct Args {
    seeds: usize,
    horizon: u64,
    threads: Vec<usize>,
    out: PathBuf,
    check: Option<PathBuf>,
    tolerance_pct: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut seeds = 32usize;
    let mut horizon = 200u64;
    let mut threads = vec![2, 4, ParallelConfig::available().threads()];
    let mut out = PathBuf::from("results/BENCH_parallel.json");
    let mut check = None;
    let mut tolerance_pct = 30.0;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |name: &str| {
            argv.next()
                .ok_or_else(|| format!("{name} requires an argument"))
        };
        match arg.as_str() {
            "--seeds" => seeds = value("--seeds")?.parse().map_err(|e| format!("{e}"))?,
            "--horizon" => horizon = value("--horizon")?.parse().map_err(|e| format!("{e}"))?,
            "--threads" => {
                threads = value("--threads")?
                    .split(',')
                    .map(|t| t.trim().parse::<usize>().map_err(|e| format!("{e}")))
                    .collect::<Result<_, _>>()?;
            }
            "--out" => out = PathBuf::from(value("--out")?),
            "--check" => check = Some(PathBuf::from(value("--check")?)),
            "--tolerance" => {
                tolerance_pct = value("--tolerance")?.parse().map_err(|e| format!("{e}"))?
            }
            "--help" | "-h" => {
                return Err(
                    "usage: parallel_bench [--seeds N] [--horizon T] [--threads a,b,c] [--out FILE] \
                     | --check FILE [--tolerance PCT]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if seeds == 0 {
        return Err("--seeds must be at least 1".to_string());
    }
    threads.retain(|&t| t > 1);
    threads.sort_unstable();
    threads.dedup();
    Ok(Args {
        seeds,
        horizon,
        threads,
        out,
        check,
        tolerance_pct,
    })
}

/// The ensemble under test: the paper's quarantine-scale star with a
/// random worm — heavy enough that one run is milliseconds, the shape
/// every sweep in the repo uses.
fn scenario(horizon: u64) -> (World, SimConfig) {
    let world = World::from_star(generators::star(399).expect("valid star"));
    let config = SimConfig::builder()
        .beta(0.8)
        .horizon(horizon)
        .initial_infected(2)
        .build()
        .expect("valid config");
    (world, config)
}

struct Row {
    threads: usize,
    wall_secs: f64,
    /// Serial wall over pooled wall — capped at `schedulable`, so a
    /// flat value with few seeds is a ceiling, not a regression.
    ensemble_speedup: f64,
    /// Serial wall over summed worker busy time: what one run costs
    /// inside the pool, independent of how many runs there were.
    per_run_speedup: f64,
    /// `min(threads, seeds)`: the hard ceiling on `ensemble_speedup`.
    schedulable: usize,
    mean_utilization: f64,
    bit_identical: bool,
}

fn identical(a: &AveragedResult, b: &AveragedResult) -> bool {
    a.infected_fraction == b.infected_fraction
        && a.ever_infected_fraction == b.ever_infected_fraction
        && a.immunized_fraction == b.immunized_fraction
        && a.runs == b.runs
        && a.outcomes == b.outcomes
        && a.infected_envelope() == b.infected_envelope()
}

/// Pulls the first number following `"key":` out of a JSON text (same
/// helper as the other bench bins; avoids a JSON dependency).
fn json_f64(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = text.find(&needle)?;
    let rest = text[at + needle.len()..].trim_start().strip_prefix(':')?;
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The recorded row with the largest thread count in a BENCH_parallel
/// report: `(threads, ensemble_speedup)`.
fn largest_recorded_row(text: &str) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for chunk in text.split("{\"threads\":").skip(1) {
        let row = format!("{{\"threads\":{chunk}");
        let threads = json_f64(&row, "threads")? as usize;
        let speedup = json_f64(&row, "ensemble_speedup")?;
        if best.is_none_or(|(t, _)| threads > t) {
            best = Some((threads, speedup));
        }
    }
    best
}

/// The `--check` CI guard: bit-identity always, the recorded ensemble
/// speedup only when this machine has the hardware to reproduce it.
fn run_check(baseline_path: &std::path::Path, args: &Args) -> ExitCode {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {}: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
    };
    let Some((threads, recorded)) = largest_recorded_row(&text) else {
        eprintln!(
            "no pooled rows with an ensemble_speedup in {} — regenerate the baseline",
            baseline_path.display()
        );
        return ExitCode::FAILURE;
    };
    let seeds_recorded = json_f64(&text, "seeds").map_or(args.seeds, |s| s as usize);
    let (world, config) = scenario(args.horizon);
    let seeds: Vec<u64> = (0..seeds_recorded as u64).collect();

    let t0 = Instant::now();
    let baseline = run_averaged_parallel(
        &world,
        &config,
        WormBehavior::random(),
        &seeds,
        &ParallelConfig::serial(),
    );
    let serial_secs = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let pooled = run_averaged_parallel(
        &world,
        &config,
        WormBehavior::random(),
        &seeds,
        &ParallelConfig::new(threads),
    );
    let wall_secs = t0.elapsed().as_secs_f64();
    if !identical(&baseline, &pooled) {
        eprintln!("REGRESSION: the {threads}-thread ensemble diverged from the serial baseline");
        return ExitCode::FAILURE;
    }
    println!("{threads}-thread ensemble bit-identical to the serial baseline");

    let hw_threads = ParallelConfig::available().threads();
    if hw_threads < threads {
        println!(
            "perf clause skipped: recorded row used {threads} threads, machine has {hw_threads}"
        );
        return ExitCode::SUCCESS;
    }
    let measured = serial_secs / wall_secs.max(1e-9);
    let pct = if recorded > 0.0 {
        (1.0 - measured / recorded) * 100.0
    } else {
        0.0
    };
    println!(
        "{threads} threads: ensemble speedup {measured:.2}x vs recorded {recorded:.2}x \
         (slowdown {pct:+.1}%, tolerance {:.1}%)",
        args.tolerance_pct
    );
    if pct > args.tolerance_pct {
        eprintln!(
            "REGRESSION: ensemble speedup fell {pct:.1}% > {:.1}% tolerance",
            args.tolerance_pct
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(baseline_path) = args.check.clone() {
        return run_check(&baseline_path, &args);
    }
    let (world, config) = scenario(args.horizon);
    let seeds: Vec<u64> = (0..args.seeds as u64).collect();
    let hw_threads = ParallelConfig::available().threads();

    println!(
        "parallel runner benchmark: {} seeds, horizon {}, star-399, {} hardware thread(s)",
        args.seeds, args.horizon, hw_threads
    );

    let t0 = Instant::now();
    let baseline = run_averaged_parallel(
        &world,
        &config,
        WormBehavior::random(),
        &seeds,
        &ParallelConfig::serial(),
    );
    let serial_secs = t0.elapsed().as_secs_f64();
    println!(
        "{:>8} {:>10} {:>9} {:>9} {:>12} {:>13} {:>14}",
        "threads", "wall (s)", "ensemble", "per-run", "schedulable", "utilization", "bit-identical"
    );
    println!(
        "{:>8} {:>10.3} {:>8.2}x {:>8.2}x {:>12} {:>12.1}% {:>14}",
        1, serial_secs, 1.0, 1.0, 1, 100.0, "baseline"
    );

    let mut rows = vec![Row {
        threads: 1,
        wall_secs: serial_secs,
        ensemble_speedup: 1.0,
        per_run_speedup: 1.0,
        schedulable: 1,
        mean_utilization: 1.0,
        bit_identical: true,
    }];
    let mut all_identical = true;
    for &threads in &args.threads {
        let t0 = Instant::now();
        let pooled = run_averaged_parallel(
            &world,
            &config,
            WormBehavior::random(),
            &seeds,
            &ParallelConfig::new(threads),
        );
        let wall_secs = t0.elapsed().as_secs_f64();
        let busy: f64 = pooled
            .workers
            .iter()
            .map(|w| w.busy.as_secs_f64())
            .sum::<f64>();
        let mean_utilization = if wall_secs > 0.0 {
            (busy / (wall_secs * pooled.workers.len() as f64)).min(1.0)
        } else {
            0.0
        };
        let bit_identical = identical(&baseline, &pooled);
        all_identical &= bit_identical;
        let ensemble_speedup = serial_secs / wall_secs;
        let per_run_speedup = serial_secs / busy.max(1e-9);
        let schedulable = threads.min(args.seeds);
        println!(
            "{:>8} {:>10.3} {:>8.2}x {:>8.2}x {:>12} {:>12.1}% {:>14}",
            threads,
            wall_secs,
            ensemble_speedup,
            per_run_speedup,
            schedulable,
            mean_utilization * 100.0,
            if bit_identical { "yes" } else { "NO" }
        );
        rows.push(Row {
            threads,
            wall_secs,
            ensemble_speedup,
            per_run_speedup,
            schedulable,
            mean_utilization,
            bit_identical,
        });
    }

    let mut json = String::from("{\n");
    json.push_str("  \"benchmark\": \"parallel_runner\",\n");
    json.push_str("  \"topology\": \"star-399\",\n");
    json.push_str(&format!("  \"seeds\": {},\n", args.seeds));
    json.push_str(&format!("  \"horizon\": {},\n", args.horizon));
    json.push_str(&format!("  \"hardware_threads\": {hw_threads},\n"));
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"threads\": {}, \"wall_secs\": {:.6}, \"ensemble_speedup\": {:.4}, \
             \"per_run_speedup\": {:.4}, \"schedulable\": {}, \
             \"mean_utilization\": {:.4}, \"bit_identical\": {}}}{}\n",
            r.threads,
            r.wall_secs,
            r.ensemble_speedup,
            r.per_run_speedup,
            r.schedulable,
            r.mean_utilization,
            r.bit_identical,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    if let Some(dir) = args.out.parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("cannot create {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(e) = std::fs::write(&args.out, json) {
        eprintln!("cannot write {}: {e}", args.out.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {}", args.out.display());

    if !all_identical {
        eprintln!("DETERMINISM VIOLATION: a pooled run diverged from the serial baseline");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
