//! Serial-vs-pooled ensemble benchmark for the deterministic parallel
//! runner.
//!
//! ```text
//! parallel_bench [--seeds N] [--horizon T] [--threads a,b,c] [--out FILE]
//! ```
//!
//! Runs the same seeded ensemble (default: 32 seeds on a 399-leaf star)
//! serially and on worker pools of increasing size, verifies every pooled
//! result is **bit-identical** to the serial one, and reports wall clock,
//! speedup, and mean worker utilization per thread count. The table is
//! printed and also written as JSON (default `results/BENCH_parallel.json`)
//! so speedup regressions are diffable.
//!
//! Exit code is nonzero if any pooled run diverges from the serial
//! baseline — the determinism contract is part of the benchmark.

use dynaquar_netsim::config::{SimConfig, WormBehavior};
use dynaquar_netsim::runner::{run_averaged_parallel, AveragedResult};
use dynaquar_netsim::World;
use dynaquar_parallel::ParallelConfig;
use dynaquar_topology::generators;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

struct Args {
    seeds: usize,
    horizon: u64,
    threads: Vec<usize>,
    out: PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut seeds = 32usize;
    let mut horizon = 200u64;
    let mut threads = vec![2, 4, ParallelConfig::available().threads()];
    let mut out = PathBuf::from("results/BENCH_parallel.json");
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |name: &str| {
            argv.next()
                .ok_or_else(|| format!("{name} requires an argument"))
        };
        match arg.as_str() {
            "--seeds" => seeds = value("--seeds")?.parse().map_err(|e| format!("{e}"))?,
            "--horizon" => horizon = value("--horizon")?.parse().map_err(|e| format!("{e}"))?,
            "--threads" => {
                threads = value("--threads")?
                    .split(',')
                    .map(|t| t.trim().parse::<usize>().map_err(|e| format!("{e}")))
                    .collect::<Result<_, _>>()?;
            }
            "--out" => out = PathBuf::from(value("--out")?),
            "--help" | "-h" => {
                return Err(
                    "usage: parallel_bench [--seeds N] [--horizon T] [--threads a,b,c] [--out FILE]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if seeds == 0 {
        return Err("--seeds must be at least 1".to_string());
    }
    threads.retain(|&t| t > 1);
    threads.sort_unstable();
    threads.dedup();
    Ok(Args {
        seeds,
        horizon,
        threads,
        out,
    })
}

/// The ensemble under test: the paper's quarantine-scale star with a
/// random worm — heavy enough that one run is milliseconds, the shape
/// every sweep in the repo uses.
fn scenario(horizon: u64) -> (World, SimConfig) {
    let world = World::from_star(generators::star(399).expect("valid star"));
    let config = SimConfig::builder()
        .beta(0.8)
        .horizon(horizon)
        .initial_infected(2)
        .build()
        .expect("valid config");
    (world, config)
}

struct Row {
    threads: usize,
    wall_secs: f64,
    speedup: f64,
    mean_utilization: f64,
    bit_identical: bool,
}

fn identical(a: &AveragedResult, b: &AveragedResult) -> bool {
    a.infected_fraction == b.infected_fraction
        && a.ever_infected_fraction == b.ever_infected_fraction
        && a.immunized_fraction == b.immunized_fraction
        && a.runs == b.runs
        && a.outcomes == b.outcomes
        && a.infected_envelope() == b.infected_envelope()
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let (world, config) = scenario(args.horizon);
    let seeds: Vec<u64> = (0..args.seeds as u64).collect();
    let hw_threads = ParallelConfig::available().threads();

    println!(
        "parallel runner benchmark: {} seeds, horizon {}, star-399, {} hardware thread(s)",
        args.seeds, args.horizon, hw_threads
    );

    let t0 = Instant::now();
    let baseline = run_averaged_parallel(
        &world,
        &config,
        WormBehavior::random(),
        &seeds,
        &ParallelConfig::serial(),
    );
    let serial_secs = t0.elapsed().as_secs_f64();
    println!("{:>8} {:>10} {:>9} {:>13} {:>14}", "threads", "wall (s)", "speedup", "utilization", "bit-identical");
    println!("{:>8} {:>10.3} {:>9.2} {:>12.1}% {:>14}", 1, serial_secs, 1.0, 100.0, "baseline");

    let mut rows = vec![Row {
        threads: 1,
        wall_secs: serial_secs,
        speedup: 1.0,
        mean_utilization: 1.0,
        bit_identical: true,
    }];
    let mut all_identical = true;
    for &threads in &args.threads {
        let t0 = Instant::now();
        let pooled = run_averaged_parallel(
            &world,
            &config,
            WormBehavior::random(),
            &seeds,
            &ParallelConfig::new(threads),
        );
        let wall_secs = t0.elapsed().as_secs_f64();
        let busy: f64 = pooled
            .workers
            .iter()
            .map(|w| w.busy.as_secs_f64())
            .sum::<f64>();
        let mean_utilization = if wall_secs > 0.0 {
            (busy / (wall_secs * pooled.workers.len() as f64)).min(1.0)
        } else {
            0.0
        };
        let bit_identical = identical(&baseline, &pooled);
        all_identical &= bit_identical;
        let speedup = serial_secs / wall_secs;
        println!(
            "{:>8} {:>10.3} {:>9.2} {:>12.1}% {:>14}",
            threads,
            wall_secs,
            speedup,
            mean_utilization * 100.0,
            if bit_identical { "yes" } else { "NO" }
        );
        rows.push(Row {
            threads,
            wall_secs,
            speedup,
            mean_utilization,
            bit_identical,
        });
    }

    let mut json = String::from("{\n");
    json.push_str("  \"benchmark\": \"parallel_runner\",\n");
    json.push_str("  \"topology\": \"star-399\",\n");
    json.push_str(&format!("  \"seeds\": {},\n", args.seeds));
    json.push_str(&format!("  \"horizon\": {},\n", args.horizon));
    json.push_str(&format!("  \"hardware_threads\": {hw_threads},\n"));
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"threads\": {}, \"wall_secs\": {:.6}, \"speedup\": {:.4}, \
             \"mean_utilization\": {:.4}, \"bit_identical\": {}}}{}\n",
            r.threads,
            r.wall_secs,
            r.speedup,
            r.mean_utilization,
            r.bit_identical,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    if let Some(dir) = args.out.parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("cannot create {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(e) = std::fs::write(&args.out, json) {
        eprintln!("cannot write {}: {e}", args.out.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {}", args.out.display());

    if !all_identical {
        eprintln!("DETERMINISM VIOLATION: a pooled run diverged from the serial baseline");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
