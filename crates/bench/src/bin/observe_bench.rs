//! Instrumentation-overhead benchmark for the metrics/observer layer.
//!
//! ```text
//! observe_bench [--seeds N] [--horizon T] [--repeats R] [--out FILE]
//!               [--reference SECS] [--check FILE] [--tolerance PCT]
//! ```
//!
//! Runs the same seeded ensemble (default: 32 seeds on a 399-leaf star,
//! the `parallel_bench` workload) three ways — with the no-op
//! [`NullObserver`](dynaquar_netsim::observer::NullObserver), with a
//! tallying [`MetricsObserver`], and with a [`JsonlEventWriter`]
//! streaming every packet event into `io::sink()` — and reports the
//! wall clock of each, taking the minimum over `--repeats` rounds to
//! shake out scheduler noise. The packet ledger and phase profile of
//! the instrumented ensemble are embedded in the JSON report (default
//! `results/BENCH_observe.json`) so the cost of observation is diffable
//! alongside what was observed.
//!
//! `--reference SECS` records an externally measured wall for the same
//! ensemble on a pre-instrumentation build of the engine; the report
//! then includes the NullObserver overhead relative to it.
//!
//! `--check FILE` is the CI guard: instead of writing a report, it
//! re-measures the NullObserver wall and exits nonzero if it regressed
//! more than `--tolerance` percent (default 5) against the
//! `null_wall_secs` recorded in FILE.

use dynaquar_netsim::config::{SimConfig, WormBehavior};
use dynaquar_netsim::metrics::{JsonlEventWriter, MetricsObserver, PhaseProfile};
use dynaquar_netsim::sim::Simulator;
use dynaquar_netsim::World;
use dynaquar_topology::generators;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

struct Args {
    seeds: usize,
    horizon: u64,
    repeats: usize,
    out: PathBuf,
    reference: Option<f64>,
    check: Option<PathBuf>,
    tolerance_pct: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seeds: 32,
        horizon: 200,
        repeats: 5,
        out: PathBuf::from("results/BENCH_observe.json"),
        reference: None,
        check: None,
        tolerance_pct: 5.0,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |name: &str| {
            argv.next()
                .ok_or_else(|| format!("{name} requires an argument"))
        };
        match arg.as_str() {
            "--seeds" => args.seeds = value("--seeds")?.parse().map_err(|e| format!("{e}"))?,
            "--horizon" => {
                args.horizon = value("--horizon")?.parse().map_err(|e| format!("{e}"))?
            }
            "--repeats" => {
                args.repeats = value("--repeats")?.parse().map_err(|e| format!("{e}"))?
            }
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--reference" => {
                args.reference =
                    Some(value("--reference")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--check" => args.check = Some(PathBuf::from(value("--check")?)),
            "--tolerance" => {
                args.tolerance_pct =
                    value("--tolerance")?.parse().map_err(|e| format!("{e}"))?
            }
            "--help" | "-h" => {
                return Err("usage: observe_bench [--seeds N] [--horizon T] [--repeats R] \
                     [--out FILE] [--reference SECS] [--check FILE] [--tolerance PCT]"
                    .to_string())
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if args.seeds == 0 || args.repeats == 0 {
        return Err("--seeds and --repeats must be at least 1".to_string());
    }
    Ok(Args { ..args })
}

/// Same ensemble as `parallel_bench`, so the serial NullObserver wall
/// here is directly comparable to that benchmark's serial baseline.
fn scenario(horizon: u64) -> (World, SimConfig) {
    let world = World::from_star(generators::star(399).expect("valid star"));
    let config = SimConfig::builder()
        .beta(0.8)
        .horizon(horizon)
        .initial_infected(2)
        .build()
        .expect("valid config");
    (world, config)
}

/// Minimum wall over `repeats` rounds of running the full ensemble
/// through `run_one`.
fn measure<F: FnMut(u64)>(seeds: usize, repeats: usize, mut run_one: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        let t0 = Instant::now();
        for seed in 0..seeds as u64 {
            run_one(seed);
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn overhead_pct(wall: f64, base: f64) -> f64 {
    if base > 0.0 {
        (wall / base - 1.0) * 100.0
    } else {
        0.0
    }
}

/// Pulls the first number following `"key":` out of a JSON text. Good
/// enough for the flat reports this binary writes; avoids a JSON
/// dependency.
fn json_f64(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = text.find(&needle)?;
    let rest = text[at + needle.len()..].trim_start().strip_prefix(':')?;
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| {
            !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
        })
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let (world, config) = scenario(args.horizon);

    println!(
        "observer overhead benchmark: {} seeds, horizon {}, star-399, best of {} round(s)",
        args.seeds, args.horizon, args.repeats
    );

    let null_wall = measure(args.seeds, args.repeats, |seed| {
        let _ = Simulator::new(&world, &config, WormBehavior::random(), seed).run();
    });

    // CI guard mode: only the NullObserver wall matters.
    if let Some(baseline_path) = &args.check {
        let text = match std::fs::read_to_string(baseline_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {}: {e}", baseline_path.display());
                return ExitCode::FAILURE;
            }
        };
        let Some(baseline) = json_f64(&text, "null_wall_secs") else {
            eprintln!(
                "no null_wall_secs in {} — regenerate the baseline",
                baseline_path.display()
            );
            return ExitCode::FAILURE;
        };
        let pct = overhead_pct(null_wall, baseline);
        println!(
            "NullObserver wall {null_wall:.3}s vs recorded {baseline:.3}s ({pct:+.1}%, \
             tolerance {:.1}%)",
            args.tolerance_pct
        );
        if pct > args.tolerance_pct {
            eprintln!(
                "REGRESSION: NullObserver path slowed {pct:.1}% > {:.1}% tolerance",
                args.tolerance_pct
            );
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }

    let metrics_wall = measure(args.seeds, args.repeats, |seed| {
        let mut obs = MetricsObserver::default();
        let _ = Simulator::new(&world, &config, WormBehavior::random(), seed)
            .run_observed(&mut obs);
    });
    let jsonl_wall = measure(args.seeds, args.repeats, |seed| {
        let mut w = JsonlEventWriter::new(std::io::sink());
        let _ = Simulator::new(&world, &config, WormBehavior::random(), seed)
            .run_observed(&mut w);
    });

    // One instrumented pass to report what the counters actually saw.
    let mut accounting = dynaquar_netsim::metrics::PacketAccounting::default();
    let mut phases = PhaseProfile::default();
    let mut events = 0u64;
    for seed in 0..args.seeds as u64 {
        let mut w = JsonlEventWriter::new(std::io::sink());
        let r = Simulator::new(&world, &config, WormBehavior::random(), seed)
            .run_observed(&mut w);
        accounting.merge(&r.accounting);
        phases.merge(&r.phases);
        events += w.events_written();
    }

    let metrics_pct = overhead_pct(metrics_wall, null_wall);
    let jsonl_pct = overhead_pct(jsonl_wall, null_wall);
    println!("{:>22} {:>10} {:>10}", "observer", "wall (s)", "overhead");
    println!("{:>22} {:>10.3} {:>9.1}%", "NullObserver", null_wall, 0.0);
    println!(
        "{:>22} {:>10.3} {:>9.1}%",
        "MetricsObserver", metrics_wall, metrics_pct
    );
    println!(
        "{:>22} {:>10.3} {:>9.1}%",
        "JsonlEventWriter(sink)", jsonl_wall, jsonl_pct
    );
    if let Some(reference) = args.reference {
        println!(
            "pre-instrumentation reference {reference:.3}s → NullObserver overhead {:+.1}%",
            overhead_pct(null_wall, reference)
        );
    }
    println!("{}", accounting.total());
    println!("{phases}");

    let mut json = String::from("{\n");
    json.push_str("  \"benchmark\": \"observer_overhead\",\n");
    json.push_str("  \"topology\": \"star-399\",\n");
    json.push_str(&format!("  \"seeds\": {},\n", args.seeds));
    json.push_str(&format!("  \"horizon\": {},\n", args.horizon));
    json.push_str(&format!("  \"repeats\": {},\n", args.repeats));
    json.push_str(&format!("  \"null_wall_secs\": {null_wall:.6},\n"));
    json.push_str(&format!("  \"metrics_wall_secs\": {metrics_wall:.6},\n"));
    json.push_str(&format!("  \"jsonl_sink_wall_secs\": {jsonl_wall:.6},\n"));
    json.push_str(&format!(
        "  \"metrics_overhead_pct\": {metrics_pct:.2},\n"
    ));
    json.push_str(&format!("  \"jsonl_overhead_pct\": {jsonl_pct:.2},\n"));
    if let Some(reference) = args.reference {
        json.push_str(&format!(
            "  \"pre_instrumentation_wall_secs\": {reference:.6},\n"
        ));
        json.push_str(&format!(
            "  \"null_overhead_vs_pre_instrumentation_pct\": {:.2},\n",
            overhead_pct(null_wall, reference)
        ));
    }
    json.push_str(&format!("  \"jsonl_events\": {events},\n"));
    let w = accounting.total();
    json.push_str(&format!(
        "  \"packets\": {{\"emitted\": {}, \"delivered\": {}, \"filtered\": {}, \
         \"lost\": {}, \"unroutable\": {}, \"cleared\": {}, \"conserved\": {}}},\n",
        w.emitted,
        w.delivered,
        w.filtered,
        w.lost,
        w.unroutable,
        w.cleared,
        accounting.is_conserved()
    ));
    json.push_str("  \"phases\": [\n");
    let entries = phases.entries();
    for (i, (phase, spent)) in entries.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"phase\": \"{}\", \"secs\": {:.6}, \"fraction\": {:.4}}}{}\n",
            phase.label(),
            spent.as_secs_f64(),
            phases.fraction(*phase),
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    if let Some(dir) = args.out.parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("cannot create {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(e) = std::fs::write(&args.out, json) {
        eprintln!("cannot write {}: {e}", args.out.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {}", args.out.display());
    ExitCode::SUCCESS
}
