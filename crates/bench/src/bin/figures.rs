//! Regenerates the paper's figures and tables.
//!
//! ```text
//! figures [all | <exp_id>...] [--quick] [--csv <dir>] [--markdown <file>] [--list]
//! ```
//!
//! With no arguments, runs every experiment at full quality and prints
//! the per-curve summaries and shape-check verdicts. `--csv <dir>` also
//! writes each figure's curves as `<dir>/<exp_id>.csv`.

use dynaquar_bench::{render_markdown, render_output, run_experiment};
use dynaquar_core::experiments::{self, Quality};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    ids: Vec<String>,
    quality: Quality,
    csv_dir: Option<PathBuf>,
    markdown: Option<PathBuf>,
    list: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut ids = Vec::new();
    let mut quality = Quality::Full;
    let mut csv_dir = None;
    let mut markdown = None;
    let mut list = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--quick" => quality = Quality::Quick,
            "--list" => list = true,
            "--csv" => {
                let dir = argv
                    .next()
                    .ok_or_else(|| "--csv requires a directory argument".to_string())?;
                csv_dir = Some(PathBuf::from(dir));
            }
            "--markdown" => {
                let file = argv
                    .next()
                    .ok_or_else(|| "--markdown requires a file argument".to_string())?;
                markdown = Some(PathBuf::from(file));
            }
            "--help" | "-h" => {
                return Err(
                    "usage: figures [all | <exp_id>...] [--quick] [--csv <dir>] \
                     [--markdown <file>] [--list]"
                        .to_string(),
                )
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag {other}"));
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ids = experiments::all().iter().map(|e| e.id.to_string()).collect();
    }
    Ok(Args {
        ids,
        quality,
        csv_dir,
        markdown,
        list,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if args.list {
        for e in experiments::all() {
            println!("{:<12} {}", e.id, e.title);
        }
        return ExitCode::SUCCESS;
    }
    if let Some(dir) = &args.csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }

    let known: Vec<&'static str> = experiments::all().iter().map(|e| e.id).collect();
    let mut failed_checks = 0usize;
    let mut markdown_doc = String::from("# Regenerated experiment report\n\n");
    for id in &args.ids {
        if !known.contains(&id.as_str()) {
            eprintln!("unknown experiment id {id}; known ids: {known:?}");
            return ExitCode::FAILURE;
        }
        let start = std::time::Instant::now();
        let out = run_experiment(id, args.quality);
        print!("{}", render_output(&out));
        println!("    ({:.1?})", start.elapsed());
        failed_checks += out.checks.iter().filter(|c| !c.passed).count();
        if args.markdown.is_some() {
            markdown_doc.push_str(&render_markdown(&out));
        }
        if let Some(dir) = &args.csv_dir {
            let path = dir.join(format!("{id}.csv"));
            if let Err(e) = std::fs::write(&path, out.series.to_csv()) {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(file) = &args.markdown {
        if let Err(e) = std::fs::write(file, markdown_doc) {
            eprintln!("cannot write {}: {e}", file.display());
            return ExitCode::FAILURE;
        }
    }
    if failed_checks > 0 {
        eprintln!("{failed_checks} shape check(s) failed");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
