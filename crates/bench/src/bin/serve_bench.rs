//! Serving-layer benchmark: job throughput through an in-process
//! [`Daemon`] and the cost of streaming fan-out to live subscribers.
//!
//! ```text
//! serve_bench [--jobs N] [--horizon T] [--repeats R] [--subscribers S]
//!             [--out FILE] [--check FILE] [--tolerance PCT]
//! ```
//!
//! Two legs, both verified for bit-identity against direct
//! [`Simulator`] runs of the same specs before any number is reported:
//!
//! * **throughput** — `--jobs` small star worlds (distinct seeds) are
//!   first run directly and serially as the engine-only reference, then
//!   submitted together to a daemon and awaited; the report records
//!   jobs/s through the daemon and the serving overhead relative to
//!   the serial direct wall (negative when the worker pool wins).
//! * **fan-out** — one fully instrumented dynamic-quarantine star
//!   (dense event stream) runs served with zero subscribers and again
//!   with `--subscribers` concurrent drained subscribers; the delta is
//!   the fan-out overhead, and every subscriber's bytes must equal the
//!   direct run's JSONL stream.
//!
//! `--check FILE` is the CI guard: it re-runs both identity checks and
//! re-measures throughput, failing if jobs/s dropped more than
//! `--tolerance` percent (default 60 — serving walls are short and
//! scheduler-noisy) below the `jobs_per_sec` recorded in FILE.

use dynaquar_core::spec::{parse_json, scenario_from_value, Value};
use dynaquar_netsim::metrics::JsonlEventWriter;
use dynaquar_netsim::sim::{SimResult, Simulator};
use dynaquar_serve::{pump_stream, Daemon, ServeConfig};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

struct Args {
    jobs: usize,
    horizon: u64,
    repeats: usize,
    subscribers: usize,
    out: PathBuf,
    check: Option<PathBuf>,
    tolerance_pct: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        jobs: 24,
        horizon: 50,
        repeats: 3,
        subscribers: 4,
        out: PathBuf::from("results/BENCH_serve.json"),
        check: None,
        tolerance_pct: 60.0,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |name: &str| {
            argv.next()
                .ok_or_else(|| format!("{name} requires an argument"))
        };
        match arg.as_str() {
            "--jobs" => args.jobs = value("--jobs")?.parse().map_err(|e| format!("{e}"))?,
            "--horizon" => {
                args.horizon = value("--horizon")?.parse().map_err(|e| format!("{e}"))?
            }
            "--repeats" => {
                args.repeats = value("--repeats")?.parse().map_err(|e| format!("{e}"))?
            }
            "--subscribers" => {
                args.subscribers = value("--subscribers")?.parse().map_err(|e| format!("{e}"))?
            }
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--check" => args.check = Some(PathBuf::from(value("--check")?)),
            "--tolerance" => {
                args.tolerance_pct = value("--tolerance")?.parse().map_err(|e| format!("{e}"))?
            }
            "--help" | "-h" => {
                return Err("usage: serve_bench [--jobs N] [--horizon T] [--repeats R] \
                     [--subscribers S] [--out FILE] [--check FILE] [--tolerance PCT]"
                    .to_string())
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if args.jobs == 0 || args.repeats == 0 {
        return Err("--jobs and --repeats must be at least 1".to_string());
    }
    Ok(Args { ..args })
}

/// One small throughput job: a bare star epidemic, distinct seed per
/// job so the daemon schedules genuinely different work.
fn small_spec(horizon: u64, seed: u64) -> Value {
    parse_json(&format!(
        r#"{{
            "topology": {{"kind": "star", "leaves": 99}},
            "beta": 0.8, "horizon": {horizon}, "initial_infected": 1,
            "runs": 1, "seed": {seed}
        }}"#
    ))
    .expect("throughput spec is valid")
}

/// The fan-out job: the fully instrumented dynamic-quarantine star, so
/// the subscriber stream carries the densest event mix the engine emits.
fn fanout_spec() -> Value {
    parse_json(
        r#"{
            "topology": {"kind": "star", "leaves": 199},
            "beta": 0.8, "horizon": 200, "initial_infected": 2,
            "deployment": {"hosts": 1.0},
            "params": {"host_window_ticks": 200, "host_max_new_targets": 1,
                       "host_release_period_ticks": 10},
            "quarantine": {"queue_threshold": 3},
            "runs": 1, "seed": 21
        }"#,
    )
    .expect("fan-out spec is valid")
}

/// Direct engine run of a spec: the reference result and JSONL stream.
fn direct_run(spec: &Value) -> (SimResult, Vec<u8>) {
    let scenario = scenario_from_value(spec).expect("bench spec is valid");
    let world = scenario.build_world();
    let config = scenario.sim_config_for(&world);
    let sim = Simulator::try_new(&world, &config, scenario.worm_behavior(), scenario.base_seed())
        .expect("bench spec must start");
    let mut writer = JsonlEventWriter::new(Vec::new());
    let result = sim.run_observed(&mut writer);
    (result, writer.finish().expect("reference stream"))
}

fn temp_state(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dq-serve-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Submits `specs` to a fresh daemon, waits for all, returns the wall
/// and verifies every served result against its direct reference.
fn served_batch_wall(specs: &[Value], direct: &[SimResult]) -> Result<f64, String> {
    let state = temp_state("throughput");
    let daemon = Daemon::open(ServeConfig::new(&state)).map_err(|e| e.to_string())?;
    let t0 = Instant::now();
    let mut ids = Vec::with_capacity(specs.len());
    for spec in specs {
        ids.push(daemon.submit(spec, None).map_err(|e| e.to_string())?);
    }
    for id in &ids {
        daemon.wait(id).map_err(|e| format!("{id}: {e}"))?;
    }
    let wall = t0.elapsed().as_secs_f64();
    for (id, reference) in ids.iter().zip(direct) {
        let served = daemon
            .result_sim(id)
            .map_err(|e| e.to_string())?
            .ok_or_else(|| format!("{id}: no result"))?;
        if &served != reference {
            return Err(format!("{id}: served result diverged from the direct run"));
        }
    }
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&state);
    Ok(wall)
}

/// Runs the fan-out job once with `subscribers` concurrent drained
/// subscribers; returns the wall. Every subscriber's bytes must equal
/// the direct stream.
fn fanout_wall(spec: &Value, subscribers: usize, direct_stream: &[u8]) -> Result<f64, String> {
    let state = temp_state("fanout");
    let daemon = Daemon::open(ServeConfig::new(&state)).map_err(|e| e.to_string())?;
    let t0 = Instant::now();
    let id = daemon.submit(spec, None).map_err(|e| e.to_string())?;
    let mut pumps = Vec::new();
    for _ in 0..subscribers {
        let rx = daemon.subscribe(&id).map_err(|e| e.to_string())?;
        pumps.push(std::thread::spawn(move || {
            let mut bytes = Vec::new();
            pump_stream(rx, &mut bytes).map(|stats| (bytes, stats))
        }));
    }
    daemon.wait(&id).map_err(|e| e.to_string())?;
    for (i, pump) in pumps.into_iter().enumerate() {
        let (bytes, _stats) = pump
            .join()
            .map_err(|_| format!("subscriber {i} panicked"))?
            .map_err(|e| format!("subscriber {i}: {e}"))?;
        if bytes != direct_stream {
            return Err(format!("subscriber {i} stream diverged from the direct run"));
        }
    }
    let wall = t0.elapsed().as_secs_f64();
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&state);
    Ok(wall)
}

fn overhead_pct(wall: f64, base: f64) -> f64 {
    if base > 0.0 {
        (wall / base - 1.0) * 100.0
    } else {
        0.0
    }
}

/// Pulls the first number following `"key":` out of a JSON text (same
/// minimal reader the other bench binaries use).
fn json_f64(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = text.find(&needle)?;
    let rest = text[at + needle.len()..].trim_start().strip_prefix(':')?;
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn run() -> Result<ExitCode, String> {
    let args = parse_args()?;

    println!(
        "serving benchmark: {} jobs (star-99, horizon {}), {} subscriber(s), best of {} round(s)",
        args.jobs, args.horizon, args.subscribers, args.repeats
    );

    // Engine-only reference: each throughput job run directly, serially.
    let specs: Vec<Value> = (0..args.jobs as u64)
        .map(|seed| small_spec(args.horizon, seed))
        .collect();
    let t0 = Instant::now();
    let direct: Vec<SimResult> = specs.iter().map(|s| direct_run(s).0).collect();
    let direct_wall = t0.elapsed().as_secs_f64();

    // Served throughput, best of repeats; identity verified every round.
    let mut served_wall = f64::INFINITY;
    for _ in 0..args.repeats {
        served_wall = served_wall.min(served_batch_wall(&specs, &direct)?);
    }
    let jobs_per_sec = args.jobs as f64 / served_wall;
    let serving_pct = overhead_pct(served_wall, direct_wall);
    println!(
        "throughput: {jobs_per_sec:.1} jobs/s served ({served_wall:.3}s) vs {direct_wall:.3}s \
         serial direct ({serving_pct:+.1}%)"
    );

    // CI guard mode: identity already verified above; gate on jobs/s.
    if let Some(baseline_path) = &args.check {
        let text = std::fs::read_to_string(baseline_path)
            .map_err(|e| format!("cannot read {}: {e}", baseline_path.display()))?;
        let baseline = json_f64(&text, "jobs_per_sec").ok_or_else(|| {
            format!(
                "no jobs_per_sec in {} — regenerate the baseline",
                baseline_path.display()
            )
        })?;
        let drop_pct = (1.0 - jobs_per_sec / baseline) * 100.0;
        println!(
            "jobs/s {jobs_per_sec:.1} vs recorded {baseline:.1} ({drop_pct:+.1}% drop, \
             tolerance {:.1}%)",
            args.tolerance_pct
        );
        if drop_pct > args.tolerance_pct {
            eprintln!(
                "REGRESSION: serving throughput dropped {drop_pct:.1}% > {:.1}% tolerance",
                args.tolerance_pct
            );
            return Ok(ExitCode::FAILURE);
        }
        return Ok(ExitCode::SUCCESS);
    }

    // Fan-out overhead: 0 subscribers vs S drained subscribers.
    let fanout = fanout_spec();
    let (_, direct_stream) = direct_run(&fanout);
    let mut base_wall = f64::INFINITY;
    let mut subs_wall = f64::INFINITY;
    for _ in 0..args.repeats {
        base_wall = base_wall.min(fanout_wall(&fanout, 0, &direct_stream)?);
        subs_wall = subs_wall.min(fanout_wall(&fanout, args.subscribers, &direct_stream)?);
    }
    let fanout_pct = overhead_pct(subs_wall, base_wall);
    println!(
        "fan-out: {base_wall:.3}s with 0 subscribers, {subs_wall:.3}s with {} \
         ({fanout_pct:+.1}%), streams bit-identical",
        args.subscribers
    );

    let mut json = String::from("{\n");
    json.push_str("  \"benchmark\": \"serving_layer\",\n");
    json.push_str(&format!("  \"jobs\": {},\n", args.jobs));
    json.push_str(&format!("  \"job_horizon\": {},\n", args.horizon));
    json.push_str(&format!("  \"repeats\": {},\n", args.repeats));
    json.push_str(&format!("  \"subscribers\": {},\n", args.subscribers));
    json.push_str(&format!("  \"direct_serial_wall_secs\": {direct_wall:.6},\n"));
    json.push_str(&format!("  \"served_wall_secs\": {served_wall:.6},\n"));
    json.push_str(&format!("  \"jobs_per_sec\": {jobs_per_sec:.3},\n"));
    json.push_str(&format!("  \"serving_overhead_pct\": {serving_pct:.2},\n"));
    json.push_str(&format!("  \"fanout_base_wall_secs\": {base_wall:.6},\n"));
    json.push_str(&format!("  \"fanout_subs_wall_secs\": {subs_wall:.6},\n"));
    json.push_str(&format!("  \"fanout_overhead_pct\": {fanout_pct:.2},\n"));
    json.push_str("  \"bit_identical\": true\n}\n");

    if let Some(dir) = args.out.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        }
    }
    std::fs::write(&args.out, json)
        .map_err(|e| format!("cannot write {}: {e}", args.out.display()))?;
    println!("wrote {}", args.out.display());
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
