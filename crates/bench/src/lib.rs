//! Benchmark harness for the Dynamic Quarantine reproduction.
//!
//! Two entry points:
//!
//! * the **`figures` binary** (`cargo run --release -p dynaquar-bench
//!   --bin figures -- all`) regenerates the data series behind every
//!   figure and in-prose table of the paper, printing the same rows the
//!   paper plots and writing CSVs;
//! * the **Criterion benches** (`cargo bench -p dynaquar-bench`), one per
//!   figure plus ablations (ODE steppers, routing precomputation, rate
//!   limiter implementations, cap-weight normalization).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dynaquar_core::experiments::{ExperimentOutput, Quality};

/// Renders an experiment's outcome as the text block the `figures`
/// binary prints: title, notes, per-curve summary rows, and check
/// verdicts.
pub fn render_output(out: &ExperimentOutput) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "=== {} [{}]", out.title, out.id);
    for note in &out.notes {
        let _ = writeln!(s, "    note: {note}");
    }
    for curve in out.series.iter() {
        let summary = dynaquar_epidemic::timeto::CurveSummary::of(&curve.series);
        let _ = writeln!(s, "    curve {:<45} {}", curve.label, summary);
    }
    for check in &out.checks {
        let verdict = if check.passed { "PASS" } else { "FAIL" };
        let _ = writeln!(s, "    [{verdict}] {} ({})", check.description, check.details);
    }
    s
}

/// Renders an experiment's outcome as a Markdown section (used by
/// `figures --markdown` to regenerate EXPERIMENTS-style reports).
pub fn render_markdown(out: &ExperimentOutput) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "### `{}` — {}\n", out.id, out.title);
    for note in &out.notes {
        let _ = writeln!(s, "> {note}");
    }
    if !out.notes.is_empty() {
        s.push('\n');
    }
    if !out.series.is_empty() {
        let _ = writeln!(s, "| curve | t10 | t50 | t90 | final |");
        let _ = writeln!(s, "|---|---|---|---|---|");
        for curve in out.series.iter() {
            let summary = dynaquar_epidemic::timeto::CurveSummary::of(&curve.series);
            let cell = |v: Option<f64>| v.map_or_else(|| "—".to_string(), |t| format!("{t:.1}"));
            let _ = writeln!(
                s,
                "| {} | {} | {} | {} | {:.3} |",
                curve.label,
                cell(summary.t10),
                cell(summary.t50),
                cell(summary.t90),
                summary.final_value
            );
        }
        s.push('\n');
    }
    let _ = writeln!(s, "| check | verdict | measured |");
    let _ = writeln!(s, "|---|---|---|");
    for check in &out.checks {
        let verdict = if check.passed { "**PASS**" } else { "**FAIL**" };
        let _ = writeln!(s, "| {} | {verdict} | {} |", check.description, check.details);
    }
    s.push('\n');
    s
}

/// Runs one experiment by id at the given quality.
///
/// # Panics
///
/// Panics if `id` is unknown.
pub fn run_experiment(id: &str, quality: Quality) -> ExperimentOutput {
    dynaquar_core::experiments::run(id, quality)
        .unwrap_or_else(|| panic!("unknown experiment id {id}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_includes_title_and_checks() {
        let out = run_experiment("fig2", Quality::Quick);
        let text = render_output(&out);
        assert!(text.contains("Figure 2"));
        assert!(text.contains("PASS"));
        assert!(text.contains("curve"));
    }

    #[test]
    #[should_panic(expected = "unknown experiment")]
    fn unknown_id_panics() {
        run_experiment("nope", Quality::Quick);
    }

    #[test]
    fn markdown_renders_tables() {
        let out = run_experiment("fig2", Quality::Quick);
        let md = render_markdown(&out);
        assert!(md.starts_with("### `fig2`"));
        assert!(md.contains("| curve | t10 | t50 | t90 | final |"));
        assert!(md.contains("**PASS**"));
        assert!(md.contains("| No RL |"));
    }

    #[test]
    fn markdown_for_tables_omits_curve_table() {
        let out = run_experiment("tab_worms", Quality::Quick);
        let md = render_markdown(&out);
        assert!(!md.contains("| curve |"));
        assert!(md.contains("| check | verdict | measured |"));
    }
}
