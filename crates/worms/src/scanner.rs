//! Target-selection strategies.
//!
//! At every simulation tick each infected node asks its selector for scan
//! targets. The selector sees a [`ScanContext`] describing the candidate
//! population and (for subnet-aware strategies) subnet membership.

use dynaquar_topology::generators::SubnetId;
use dynaquar_topology::NodeId;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// What a selector may look at when picking a target.
#[derive(Debug, Clone, Copy)]
pub struct ScanContext<'a> {
    /// The scanning (infected) node.
    pub scanner: NodeId,
    /// Every scannable host in the network (including infected ones —
    /// real worms cannot tell and waste scans re-infecting).
    pub hosts: &'a [NodeId],
    /// Subnet of each node, indexed by `NodeId::index` (`None` for
    /// routers or when the topology has no subnets).
    pub subnet_of: &'a [Option<SubnetId>],
    /// Hosts of each subnet, indexed by `SubnetId::index` (empty when the
    /// topology has no subnets).
    pub subnet_hosts: &'a [Vec<NodeId>],
}

impl<'a> ScanContext<'a> {
    /// The scanner's own subnet, if any.
    pub fn own_subnet(&self) -> Option<SubnetId> {
        self.subnet_of.get(self.scanner.index()).copied().flatten()
    }

    /// The hosts sharing the scanner's subnet (may include the scanner).
    pub fn local_hosts(&self) -> &'a [NodeId] {
        match self.own_subnet() {
            Some(s) => &self.subnet_hosts[s.index()],
            None => &[],
        }
    }
}

/// A worm's target-selection strategy.
///
/// Selectors are per-infected-instance (sequential scanning keeps a
/// cursor), cheap to clone, and draw all randomness from the supplied
/// generator so simulations stay reproducible.
pub trait TargetSelector: Send {
    /// Picks the next scan target, or `None` when the context offers no
    /// candidates.
    fn next_target(&mut self, ctx: &ScanContext<'_>, rng: &mut dyn rand::RngCore)
        -> Option<NodeId>;

    /// Short strategy name for labels and reports.
    fn name(&self) -> &'static str;

    /// The selector's mutable cursor state packed into one word, for
    /// engine checkpoints. Stateless selectors return 0; cursor-bearing
    /// selectors encode "not started" as `u64::MAX` and a position `c`
    /// as `c`. A freshly built selector of the same kind fed this word
    /// through [`TargetSelector::import_cursor`] must reproduce the
    /// exact target sequence the original would have produced.
    fn export_cursor(&self) -> u64 {
        0
    }

    /// Restores cursor state captured by
    /// [`TargetSelector::export_cursor`]. A no-op for stateless
    /// selectors.
    fn import_cursor(&mut self, _cursor: u64) {}
}

/// Packs an optional cursor position into the on-wire word used by
/// [`TargetSelector::export_cursor`] (`None` ⇒ `u64::MAX`).
fn pack_cursor(cursor: Option<usize>) -> u64 {
    match cursor {
        Some(c) => c as u64,
        None => u64::MAX,
    }
}

/// Inverse of [`pack_cursor`].
fn unpack_cursor(word: u64) -> Option<usize> {
    if word == u64::MAX {
        None
    } else {
        Some(word as usize)
    }
}

/// Uniform random scanning over the whole population — Code Red I style.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct UniformRandom;

impl UniformRandom {
    /// Creates the selector.
    pub fn new() -> Self {
        UniformRandom
    }
}

impl TargetSelector for UniformRandom {
    fn next_target(
        &mut self,
        ctx: &ScanContext<'_>,
        rng: &mut dyn rand::RngCore,
    ) -> Option<NodeId> {
        if ctx.hosts.is_empty() {
            return None;
        }
        Some(ctx.hosts[rng.gen_range(0..ctx.hosts.len())])
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

/// Local-preferential scanning: with probability `local_bias` the target
/// is drawn from the scanner's own subnet, otherwise from the whole
/// population — the paper's "preferential connection algorithm such as
/// subnet preferential selection".
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LocalPreferential {
    local_bias: f64,
}

impl LocalPreferential {
    /// Creates a selector aiming a fraction `local_bias ∈ [0, 1]` of
    /// scans at the local subnet.
    ///
    /// # Panics
    ///
    /// Panics if `local_bias` is not in `[0, 1]`.
    pub fn new(local_bias: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&local_bias),
            "local_bias must be in [0, 1]"
        );
        LocalPreferential { local_bias }
    }

    /// The configured local bias.
    pub fn local_bias(&self) -> f64 {
        self.local_bias
    }
}

impl TargetSelector for LocalPreferential {
    fn next_target(
        &mut self,
        ctx: &ScanContext<'_>,
        rng: &mut dyn rand::RngCore,
    ) -> Option<NodeId> {
        let local = ctx.local_hosts();
        let use_local = !local.is_empty() && rng.gen_bool(self.local_bias);
        let pool = if use_local { local } else { ctx.hosts };
        if pool.is_empty() {
            return None;
        }
        Some(pool[rng.gen_range(0..pool.len())])
    }

    fn name(&self) -> &'static str {
        "local-preferential"
    }
}

/// Sequential scanning from a random starting point — Blaster's sweep of
/// consecutive addresses.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Sequential {
    cursor: Option<usize>,
}

impl Sequential {
    /// Creates a selector; the start index is drawn on first use.
    pub fn new() -> Self {
        Sequential { cursor: None }
    }
}

impl TargetSelector for Sequential {
    fn next_target(
        &mut self,
        ctx: &ScanContext<'_>,
        rng: &mut dyn rand::RngCore,
    ) -> Option<NodeId> {
        if ctx.hosts.is_empty() {
            return None;
        }
        let cur = match self.cursor {
            Some(c) => c % ctx.hosts.len(),
            None => rng.gen_range(0..ctx.hosts.len()),
        };
        self.cursor = Some((cur + 1) % ctx.hosts.len());
        Some(ctx.hosts[cur])
    }

    fn name(&self) -> &'static str {
        "sequential"
    }

    fn export_cursor(&self) -> u64 {
        pack_cursor(self.cursor)
    }

    fn import_cursor(&mut self, cursor: u64) {
        self.cursor = unpack_cursor(cursor);
    }
}

/// Permutation scanning (Staniford et al.): every worm instance walks
/// the *same* pseudo-random permutation of the address space, but from
/// its own random starting point. Instances therefore partition the
/// space implicitly and avoid re-scanning each other's territory — the
/// coordination-free divide-and-conquer the "How to 0wn the Internet"
/// paper proposes.
///
/// The shared permutation is an affine map `i -> (a·i + b) mod n` over
/// the host indices, parameterized by a key all instances share.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Permutation {
    key: u64,
    cursor: Option<usize>,
}

impl Permutation {
    /// Creates an instance of the worm family keyed by `key` (all
    /// instances of one outbreak share the key; the start point is drawn
    /// per instance).
    pub fn new(key: u64) -> Self {
        Permutation { key, cursor: None }
    }

    /// The permutation position of `index` within a population of `n`.
    fn permute(&self, index: usize, n: usize) -> usize {
        // A multiplier coprime with n: derive an odd multiplier from the
        // key and walk until gcd == 1 (bounded by a few iterations for
        // any practical n).
        let mut a = (self.key | 1) as usize % n;
        if a == 0 {
            a = 1;
        }
        while gcd(a, n) != 1 {
            a += 1;
            if a >= n {
                a = 1;
            }
        }
        let b = (self.key >> 32) as usize % n;
        (a * index + b) % n
    }
}

fn gcd(mut a: usize, mut b: usize) -> usize {
    while b != 0 {
        let t = b;
        b = a % b;
        a = t;
    }
    a
}

impl TargetSelector for Permutation {
    fn next_target(
        &mut self,
        ctx: &ScanContext<'_>,
        rng: &mut dyn rand::RngCore,
    ) -> Option<NodeId> {
        let n = ctx.hosts.len();
        if n == 0 {
            return None;
        }
        let cur = match self.cursor {
            Some(c) => c % n,
            None => rng.gen_range(0..n),
        };
        self.cursor = Some((cur + 1) % n);
        Some(ctx.hosts[self.permute(cur, n)])
    }

    fn name(&self) -> &'static str {
        "permutation"
    }

    fn export_cursor(&self) -> u64 {
        pack_cursor(self.cursor)
    }

    fn import_cursor(&mut self, cursor: u64) {
        self.cursor = unpack_cursor(cursor);
    }
}

/// Hit-list scanning: a precomputed target list (Staniford et al.'s
/// "Warhol worm" accelerator), consumed front to back, falling back to
/// random scanning once exhausted.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HitList {
    list: Vec<NodeId>,
    cursor: usize,
}

impl HitList {
    /// Creates a selector over `list`.
    pub fn new(list: Vec<NodeId>) -> Self {
        HitList { list, cursor: 0 }
    }

    /// Remaining unconsumed hit-list entries.
    pub fn remaining(&self) -> usize {
        self.list.len().saturating_sub(self.cursor)
    }
}

impl TargetSelector for HitList {
    fn next_target(
        &mut self,
        ctx: &ScanContext<'_>,
        rng: &mut dyn rand::RngCore,
    ) -> Option<NodeId> {
        if self.cursor < self.list.len() {
            let t = self.list[self.cursor];
            self.cursor += 1;
            return Some(t);
        }
        UniformRandom.next_target(ctx, rng)
    }

    fn name(&self) -> &'static str {
        "hit-list"
    }

    fn export_cursor(&self) -> u64 {
        self.cursor as u64
    }

    fn import_cursor(&mut self, cursor: u64) {
        self.cursor = (cursor as usize).min(self.list.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynaquar_topology::generators::{SubnetId, SubnetTopologyBuilder};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    struct Fixture {
        hosts: Vec<NodeId>,
        subnet_of: Vec<Option<SubnetId>>,
        subnet_hosts: Vec<Vec<NodeId>>,
        scanner: NodeId,
    }

    fn fixture() -> Fixture {
        let t = SubnetTopologyBuilder::new()
            .backbone_routers(2)
            .subnets(4)
            .hosts_per_subnet(10)
            .build()
            .unwrap();
        let hosts: Vec<NodeId> = t.hosts().collect();
        let subnet_hosts: Vec<Vec<NodeId>> = (0..t.subnets)
            .map(|k| t.hosts_of(SubnetId::new(k as u32)).collect())
            .collect();
        let scanner = subnet_hosts[0][0];
        Fixture {
            hosts,
            subnet_of: t.subnet_of.clone(),
            subnet_hosts,
            scanner,
        }
    }

    impl Fixture {
        fn ctx(&self) -> ScanContext<'_> {
            ScanContext {
                scanner: self.scanner,
                hosts: &self.hosts,
                subnet_of: &self.subnet_of,
                subnet_hosts: &self.subnet_hosts,
            }
        }
    }

    #[test]
    fn uniform_random_covers_population() {
        let f = fixture();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut sel = UniformRandom::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2000 {
            seen.insert(sel.next_target(&f.ctx(), &mut rng).unwrap());
        }
        // 40 hosts, 2000 draws: all should appear.
        assert_eq!(seen.len(), f.hosts.len());
    }

    #[test]
    fn uniform_random_empty_population() {
        let f = fixture();
        let ctx = ScanContext {
            hosts: &[],
            ..f.ctx()
        };
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(UniformRandom::new().next_target(&ctx, &mut rng).is_none());
    }

    #[test]
    fn local_preferential_respects_bias() {
        let f = fixture();
        let mut rng = SmallRng::seed_from_u64(2);
        let mut sel = LocalPreferential::new(0.9);
        let local: std::collections::HashSet<NodeId> =
            f.subnet_hosts[0].iter().copied().collect();
        let mut local_hits = 0;
        let n = 5000;
        for _ in 0..n {
            let t = sel.next_target(&f.ctx(), &mut rng).unwrap();
            if local.contains(&t) {
                local_hits += 1;
            }
        }
        // Expected: 0.9 + 0.1 * (10/40) = 0.925.
        let frac = local_hits as f64 / n as f64;
        assert!((frac - 0.925).abs() < 0.03, "local fraction {frac}");
    }

    #[test]
    fn local_preferential_without_subnets_falls_back_to_random() {
        let f = fixture();
        let empty_subnets: Vec<Option<SubnetId>> = vec![None; f.subnet_of.len()];
        let ctx = ScanContext {
            subnet_of: &empty_subnets,
            subnet_hosts: &[],
            ..f.ctx()
        };
        let mut rng = SmallRng::seed_from_u64(3);
        let mut sel = LocalPreferential::new(1.0);
        assert!(sel.next_target(&ctx, &mut rng).is_some());
    }

    #[test]
    #[should_panic(expected = "local_bias")]
    fn local_preferential_rejects_bad_bias() {
        LocalPreferential::new(1.5);
    }

    #[test]
    fn sequential_sweeps_in_order() {
        let f = fixture();
        let mut rng = SmallRng::seed_from_u64(4);
        let mut sel = Sequential::new();
        let first = sel.next_target(&f.ctx(), &mut rng).unwrap();
        let start = f.hosts.iter().position(|&h| h == first).unwrap();
        for k in 1..10 {
            let t = sel.next_target(&f.ctx(), &mut rng).unwrap();
            assert_eq!(t, f.hosts[(start + k) % f.hosts.len()]);
        }
    }

    #[test]
    fn hit_list_consumes_then_falls_back() {
        let f = fixture();
        let mut rng = SmallRng::seed_from_u64(5);
        let list = vec![f.hosts[3], f.hosts[7]];
        let mut sel = HitList::new(list);
        assert_eq!(sel.remaining(), 2);
        assert_eq!(sel.next_target(&f.ctx(), &mut rng), Some(f.hosts[3]));
        assert_eq!(sel.next_target(&f.ctx(), &mut rng), Some(f.hosts[7]));
        assert_eq!(sel.remaining(), 0);
        // Fallback to random still yields targets.
        assert!(sel.next_target(&f.ctx(), &mut rng).is_some());
    }

    #[test]
    fn selector_names() {
        assert_eq!(UniformRandom::new().name(), "random");
        assert_eq!(LocalPreferential::new(0.5).name(), "local-preferential");
        assert_eq!(Sequential::new().name(), "sequential");
        assert_eq!(HitList::new(vec![]).name(), "hit-list");
        assert_eq!(Permutation::new(7).name(), "permutation");
    }

    #[test]
    fn permutation_visits_every_host_exactly_once_per_cycle() {
        let f = fixture();
        let mut rng = SmallRng::seed_from_u64(6);
        let mut sel = Permutation::new(0xDEADBEEF);
        let n = f.hosts.len();
        let visits: Vec<NodeId> = (0..n)
            .map(|_| sel.next_target(&f.ctx(), &mut rng).unwrap())
            .collect();
        let distinct: std::collections::HashSet<_> = visits.iter().collect();
        assert_eq!(distinct.len(), n, "one full cycle covers every host once");
    }

    #[test]
    fn permutation_instances_share_order_but_not_start() {
        let f = fixture();
        let mut rng_a = SmallRng::seed_from_u64(1);
        let mut rng_b = SmallRng::seed_from_u64(2);
        let mut a = Permutation::new(99);
        let mut b = Permutation::new(99);
        let n = f.hosts.len();
        let walk = |sel: &mut Permutation, rng: &mut SmallRng| -> Vec<NodeId> {
            (0..n).map(|_| sel.next_target(&f.ctx(), rng).unwrap()).collect()
        };
        let wa = walk(&mut a, &mut rng_a);
        let wb = walk(&mut b, &mut rng_b);
        // Same cyclic order: wb is a rotation of wa.
        let start = wa.iter().position(|&x| x == wb[0]).unwrap();
        let rotated: Vec<NodeId> = (0..n).map(|k| wa[(start + k) % n]).collect();
        assert_eq!(rotated, wb);
    }

    #[test]
    fn context_helpers() {
        let f = fixture();
        let ctx = f.ctx();
        assert_eq!(ctx.own_subnet(), Some(SubnetId::new(0)));
        assert_eq!(ctx.local_hosts().len(), 10);
    }

    #[test]
    fn cursor_round_trip_resumes_the_exact_sequence() {
        let f = fixture();
        let mut rng = SmallRng::seed_from_u64(13);
        // Every cursor-bearing selector: advance, export, rebuild fresh,
        // import — the tails must match the original's continuation.
        let mut seq = Sequential::new();
        let mut perm = Permutation::new(0xABCD);
        let mut hit = HitList::new(vec![f.hosts[1], f.hosts[5], f.hosts[9]]);
        for _ in 0..7 {
            seq.next_target(&f.ctx(), &mut rng).unwrap();
            perm.next_target(&f.ctx(), &mut rng).unwrap();
            hit.next_target(&f.ctx(), &mut rng).unwrap();
        }
        let mut seq2 = Sequential::new();
        seq2.import_cursor(seq.export_cursor());
        let mut perm2 = Permutation::new(0xABCD);
        perm2.import_cursor(perm.export_cursor());
        let mut hit2 = HitList::new(vec![f.hosts[1], f.hosts[5], f.hosts[9]]);
        hit2.import_cursor(hit.export_cursor());
        // Clone the RNG stream so original and resumed see identical draws.
        let mut rng_a = SmallRng::seed_from_u64(77);
        let mut rng_b = SmallRng::seed_from_u64(77);
        for _ in 0..20 {
            assert_eq!(
                seq.next_target(&f.ctx(), &mut rng_a),
                seq2.next_target(&f.ctx(), &mut rng_b)
            );
            assert_eq!(
                perm.next_target(&f.ctx(), &mut rng_a),
                perm2.next_target(&f.ctx(), &mut rng_b)
            );
            assert_eq!(
                hit.next_target(&f.ctx(), &mut rng_a),
                hit2.next_target(&f.ctx(), &mut rng_b)
            );
        }
        // Stateless selectors export the zero word and ignore imports.
        assert_eq!(UniformRandom::new().export_cursor(), 0);
        assert_eq!(LocalPreferential::new(0.5).export_cursor(), 0);
    }

    #[test]
    fn selectors_are_deterministic_per_seed() {
        let f = fixture();
        let run = |seed: u64| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut sel = LocalPreferential::new(0.7);
            (0..50)
                .map(|_| sel.next_target(&f.ctx(), &mut rng).unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
