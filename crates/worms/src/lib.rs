//! Worm target-selection strategies and concrete worm profiles.
//!
//! The paper studies two spreading algorithms — **random propagation**
//! (e.g. Code Red I) and **local-preferential connection** (worms "that
//! target local hosts within a subnet") — and observes two real worms,
//! **Blaster** and **Welchia**, in its campus traces. This crate models
//! both layers:
//!
//! * [`scanner`] — the [`scanner::TargetSelector`] trait
//!   and its implementations (uniform random, local-preferential,
//!   sequential, hit-list), consumed by the packet-level simulator;
//! * [`profiles`] — named parameter bundles
//!   ([`profiles::WormProfile`]) for Code Red I, Slammer,
//!   Blaster, and Welchia, including the trace-observed scan rates
//!   (Welchia's peak of 7,068 contacts/minute versus Blaster's 671).
//!
//! # Example
//!
//! ```
//! use dynaquar_worms::profiles::WormProfile;
//!
//! let welchia = WormProfile::welchia();
//! let blaster = WormProfile::blaster();
//! // The paper's footnote: Welchia scans an order of magnitude faster.
//! assert!(welchia.peak_scans_per_minute > 10.0 * blaster.peak_scans_per_minute / 2.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod profiles;
pub mod scanner;

pub use profiles::WormProfile;
pub use scanner::{ScanContext, TargetSelector};
