//! Named worm parameter bundles.
//!
//! These profiles capture the behavioural parameters the paper relies on:
//! scanning strategy, scan rate, transport signature (used by the
//! synthetic trace generator), and side effects (Welchia patches and
//! reboots its victims). Exploit payloads are irrelevant to contact-rate
//! dynamics and are not modelled.

use serde::{Deserialize, Serialize};

/// The transport-level signature a worm's probes leave in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProbeSignature {
    /// TCP SYNs to a fixed destination port (e.g. Blaster to 135/tcp,
    /// Code Red to 80/tcp).
    TcpSyn {
        /// Destination port.
        port: u16,
    },
    /// A single UDP datagram (Slammer to 1434/udp).
    Udp {
        /// Destination port.
        port: u16,
    },
    /// ICMP echo request first, then TCP on reply (Welchia's
    /// ping-then-exploit pattern).
    IcmpThenTcp {
        /// Destination port of the follow-up TCP connection.
        port: u16,
    },
}

/// Which target-selection strategy a worm uses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SelectorKind {
    /// Uniform random over the address space.
    Random,
    /// Local-preferential with the given bias toward the own subnet.
    LocalPreferential {
        /// Fraction of scans aimed at the local subnet.
        local_bias: f64,
    },
    /// Sequential sweep from a random start.
    Sequential,
    /// Shared-permutation scanning keyed per outbreak (Staniford et
    /// al.'s coordination-free space partitioning).
    Permutation {
        /// The permutation key all instances of the outbreak share.
        key: u64,
    },
}

/// A worm's behavioural parameters.
///
/// # Example
///
/// ```
/// use dynaquar_worms::profiles::{ProbeSignature, WormProfile};
///
/// let blaster = WormProfile::blaster();
/// assert_eq!(blaster.signature, ProbeSignature::TcpSyn { port: 135 });
/// assert!(!blaster.patches_host);
/// assert!(WormProfile::welchia().patches_host);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WormProfile {
    /// Worm name.
    pub name: &'static str,
    /// Target-selection strategy.
    pub selector: SelectorKind,
    /// Average scans per minute during steady propagation.
    pub scans_per_minute: f64,
    /// Peak observed scans per minute (the paper's trace footnote).
    pub peak_scans_per_minute: f64,
    /// Transport signature of a probe.
    pub signature: ProbeSignature,
    /// Packets sent per probed target (Welchia pings first: 2).
    pub packets_per_probe: u32,
    /// Whether infection patches the vulnerability and reboots the host
    /// (Welchia's "benign" behaviour — the victim leaves the susceptible
    /// pool).
    pub patches_host: bool,
    /// Whether the worm keeps retrying unanswered probes (Blaster was
    /// "much more persistent in its propagation attempts").
    pub persistent: bool,
}

impl WormProfile {
    /// Code Red I: random scanning of 80/tcp, the paper's canonical
    /// random-propagation worm.
    pub fn code_red() -> Self {
        WormProfile {
            name: "CodeRedI",
            selector: SelectorKind::Random,
            scans_per_minute: 360.0,
            peak_scans_per_minute: 600.0,
            signature: ProbeSignature::TcpSyn { port: 80 },
            packets_per_probe: 1,
            patches_host: false,
            persistent: false,
        }
    }

    /// Code Red II: the first widely seen *local-preferential* worm —
    /// 1/2 of its probes stayed in the victim's /8, 3/8 in the /16, and
    /// only 1/8 roamed the whole address space (its "localized scanning"
    /// is the behaviour Sections 5.2/5.4 model as subnet-preferential
    /// targeting).
    pub fn code_red_ii() -> Self {
        WormProfile {
            name: "CodeRedII",
            selector: SelectorKind::LocalPreferential { local_bias: 0.875 },
            scans_per_minute: 420.0,
            peak_scans_per_minute: 900.0,
            signature: ProbeSignature::TcpSyn { port: 80 },
            packets_per_probe: 1,
            patches_host: false,
            persistent: false,
        }
    }

    /// SQL Slammer: bandwidth-limited single-UDP-packet scanning — "over
    /// 90% of the vulnerable hosts on the Internet within ten minutes".
    pub fn slammer() -> Self {
        WormProfile {
            name: "Slammer",
            selector: SelectorKind::Random,
            scans_per_minute: 240_000.0,
            peak_scans_per_minute: 1_560_000.0,
            signature: ProbeSignature::Udp { port: 1434 },
            packets_per_probe: 1,
            patches_host: false,
            persistent: false,
        }
    }

    /// Blaster (MSBlast): sequential scanning of 135/tcp exploiting the
    /// Windows DCOM RPC vulnerability. The paper's trace observed a peak
    /// of 671 scanned hosts per minute.
    pub fn blaster() -> Self {
        WormProfile {
            name: "Blaster",
            selector: SelectorKind::LocalPreferential { local_bias: 0.6 },
            scans_per_minute: 300.0,
            peak_scans_per_minute: 671.0,
            signature: ProbeSignature::TcpSyn { port: 135 },
            packets_per_probe: 1,
            patches_host: false,
            persistent: true,
        }
    }

    /// Welchia (Nachi): the "patching worm" — ICMP ping sweep, then the
    /// same DCOM exploit, then patches and reboots the victim. The
    /// paper's trace observed one instance scanning 7,068 hosts in a
    /// minute, an order of magnitude above Blaster.
    pub fn welchia() -> Self {
        WormProfile {
            name: "Welchia",
            selector: SelectorKind::LocalPreferential { local_bias: 0.8 },
            scans_per_minute: 3000.0,
            peak_scans_per_minute: 7068.0,
            signature: ProbeSignature::IcmpThenTcp { port: 135 },
            packets_per_probe: 2,
            patches_host: true,
            persistent: false,
        }
    }

    /// All built-in profiles.
    pub fn all() -> Vec<WormProfile> {
        vec![
            WormProfile::code_red(),
            WormProfile::code_red_ii(),
            WormProfile::slammer(),
            WormProfile::blaster(),
            WormProfile::welchia(),
        ]
    }

    /// Average scans per second.
    pub fn scans_per_second(&self) -> f64 {
        self.scans_per_minute / 60.0
    }

    /// Converts the profile's real-time scan rate into a whole number of
    /// scans per simulator tick, given the tick length in seconds
    /// (rounded to at least one scan per tick — the simulator models
    /// sub-tick rates with the infection probability β instead).
    ///
    /// # Panics
    ///
    /// Panics if `tick_seconds <= 0`.
    pub fn scans_per_tick(&self, tick_seconds: f64) -> u32 {
        assert!(tick_seconds > 0.0, "tick length must be positive");
        (self.scans_per_second() * tick_seconds).round().max(1.0) as u32
    }

    /// Peak scans per second.
    pub fn peak_scans_per_second(&self) -> f64 {
        self.peak_scans_per_minute / 60.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welchia_order_of_magnitude_above_blaster() {
        // The paper's footnote 1.
        let w = WormProfile::welchia();
        let b = WormProfile::blaster();
        assert_eq!(w.peak_scans_per_minute, 7068.0);
        assert_eq!(b.peak_scans_per_minute, 671.0);
        assert!(w.peak_scans_per_minute / b.peak_scans_per_minute > 10.0);
    }

    #[test]
    fn both_dcom_worms_target_port_135() {
        assert_eq!(
            WormProfile::blaster().signature,
            ProbeSignature::TcpSyn { port: 135 }
        );
        assert_eq!(
            WormProfile::welchia().signature,
            ProbeSignature::IcmpThenTcp { port: 135 }
        );
    }

    #[test]
    fn welchia_pings_first() {
        assert_eq!(WormProfile::welchia().packets_per_probe, 2);
        assert!(WormProfile::welchia().patches_host);
    }

    #[test]
    fn blaster_is_persistent() {
        assert!(WormProfile::blaster().persistent);
        assert!(!WormProfile::welchia().persistent);
    }

    #[test]
    fn slammer_is_fastest() {
        let rates: Vec<f64> = WormProfile::all()
            .iter()
            .map(|p| p.scans_per_minute)
            .collect();
        assert_eq!(
            rates.iter().cloned().fold(f64::MIN, f64::max),
            WormProfile::slammer().scans_per_minute
        );
    }

    #[test]
    fn unit_conversions() {
        let b = WormProfile::blaster();
        assert!((b.scans_per_second() - 5.0).abs() < 1e-12);
        assert!((b.peak_scans_per_second() - 671.0 / 60.0).abs() < 1e-12);
    }

    #[test]
    fn scans_per_tick_conversion() {
        let b = WormProfile::blaster(); // 5 scans/s
        assert_eq!(b.scans_per_tick(1.0), 5);
        assert_eq!(b.scans_per_tick(0.2), 1);
        // Slow worms still emit at least one scan per tick.
        assert_eq!(b.scans_per_tick(0.01), 1);
        assert_eq!(WormProfile::slammer().scans_per_tick(0.001), 4);
    }

    #[test]
    #[should_panic(expected = "tick length")]
    fn scans_per_tick_rejects_zero_tick() {
        WormProfile::blaster().scans_per_tick(0.0);
    }

    #[test]
    fn all_returns_five_distinct_profiles() {
        let all = WormProfile::all();
        assert_eq!(all.len(), 5);
        let names: std::collections::HashSet<_> = all.iter().map(|p| p.name).collect();
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn code_red_ii_is_local_preferential() {
        let crii = WormProfile::code_red_ii();
        match crii.selector {
            SelectorKind::LocalPreferential { local_bias } => {
                // 1/2 + 3/8 of probes stay local.
                assert!((local_bias - 0.875).abs() < 1e-12);
            }
            other => panic!("expected local-preferential, got {other:?}"),
        }
        // Code Red I, by contrast, is uniformly random.
        assert_eq!(WormProfile::code_red().selector, SelectorKind::Random);
    }
}
