//! A long-lived job pool for serving workloads.
//!
//! [`crate::ordered_map`] is the right shape for batch sweeps: scoped
//! workers live exactly as long as one map call. A daemon has the
//! opposite lifecycle — jobs arrive one at a time over hours, and
//! spawning a thread per submitted scenario would let one burst of
//! clients oversubscribe the machine. [`JobPool`] keeps a fixed set of
//! worker threads alive for the process lifetime, feeds them jobs in
//! FIFO submission order, and isolates worker panics: a job that
//! panics is counted ([`JobPool::panicked_jobs`]) and its worker keeps
//! serving, so one poisoned scenario cannot take capacity away from
//! every client after it.
//!
//! Scheduling here decides only *when* a job runs, never what it
//! computes — jobs carry their own seeds, so a pool of any size yields
//! the same per-job results as running them serially.
//!
//! ```
//! use dynaquar_parallel::{JobPool, ParallelConfig};
//! use std::sync::mpsc;
//!
//! let pool = JobPool::new(&ParallelConfig::new(2));
//! let (tx, rx) = mpsc::channel();
//! for i in 0..8u64 {
//!     let tx = tx.clone();
//!     pool.submit(move || tx.send(i * i).unwrap());
//! }
//! drop(tx);
//! let mut results: Vec<u64> = rx.iter().collect();
//! results.sort_unstable();
//! assert_eq!(results, (0..8).map(|i| i * i).collect::<Vec<_>>());
//! pool.shutdown();
//! ```

use crate::ParallelConfig;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

#[derive(Debug, Default)]
struct PoolStats {
    completed: AtomicU64,
    panicked: AtomicU64,
}

/// A fixed-size pool of long-lived worker threads executing submitted
/// jobs in FIFO order. See the [module docs](self) for the lifecycle
/// contrast with [`crate::ordered_map`].
#[derive(Debug)]
pub struct JobPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    stats: Arc<PoolStats>,
}

impl JobPool {
    /// Spawns `config.threads()` workers.
    pub fn new(config: &ParallelConfig) -> Self {
        let threads = config.threads();
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let stats = Arc::new(PoolStats::default());
        let workers = (0..threads)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let stats = Arc::clone(&stats);
                std::thread::Builder::new()
                    .name(format!("dynaquar-job-{i}"))
                    .spawn(move || worker_loop(&rx, &stats))
                    .expect("spawn pool worker")
            })
            .collect();
        JobPool {
            tx: Some(tx),
            workers,
            stats,
        }
    }

    /// Pool sized from [`ParallelConfig::from_env`], so `DYNAQUAR_THREADS`
    /// governs serving capacity the same way it governs batch sweeps.
    pub fn from_env() -> Self {
        JobPool::new(&ParallelConfig::from_env())
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a job; it runs as soon as a worker is free, after every
    /// job submitted before it has been claimed.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        self.tx
            .as_ref()
            .expect("pool is alive until shutdown/drop")
            .send(Box::new(job))
            .expect("workers outlive the sender");
    }

    /// Jobs that ran to completion.
    pub fn completed_jobs(&self) -> u64 {
        self.stats.completed.load(Ordering::Acquire)
    }

    /// Jobs that panicked (their workers survived and kept serving).
    pub fn panicked_jobs(&self) -> u64 {
        self.stats.panicked.load(Ordering::Acquire)
    }

    /// Graceful shutdown: stops accepting jobs, drains everything
    /// already queued, and joins the workers.
    pub fn shutdown(mut self) {
        self.join_workers();
    }

    fn join_workers(&mut self) {
        // Dropping the sender disconnects the channel once the queue is
        // drained; each worker's recv() then errors and the loop exits.
        drop(self.tx.take());
        for handle in self.workers.drain(..) {
            // A worker that somehow died still must not poison the
            // shutdown of the rest.
            let _ = handle.join();
        }
    }
}

impl Drop for JobPool {
    /// Dropping the pool is a graceful shutdown: queued jobs finish
    /// first.
    fn drop(&mut self) {
        self.join_workers();
    }
}

fn worker_loop(rx: &Mutex<Receiver<Job>>, stats: &PoolStats) {
    loop {
        // Hold the lock only while claiming, never while running.
        let job = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return, // a claimant panicked while holding the lock
        };
        match job {
            Ok(job) => {
                if catch_unwind(AssertUnwindSafe(job)).is_ok() {
                    stats.completed.fetch_add(1, Ordering::AcqRel);
                } else {
                    stats.panicked.fetch_add(1, Ordering::AcqRel);
                }
            }
            Err(_) => return, // sender dropped and queue drained
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn runs_every_submitted_job() {
        let pool = JobPool::new(&ParallelConfig::new(4));
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..64 {
            let counter = Arc::clone(&counter);
            pool.submit(move || {
                counter.fetch_add(1, Ordering::AcqRel);
            });
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::Acquire), 64);
    }

    #[test]
    fn drop_drains_the_queue() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = JobPool::new(&ParallelConfig::new(2));
            for _ in 0..16 {
                let counter = Arc::clone(&counter);
                pool.submit(move || {
                    std::thread::sleep(Duration::from_millis(1));
                    counter.fetch_add(1, Ordering::AcqRel);
                });
            }
        }
        assert_eq!(counter.load(Ordering::Acquire), 16);
    }

    #[test]
    fn panicking_jobs_do_not_kill_workers() {
        let pool = JobPool::new(&ParallelConfig::new(1));
        pool.submit(|| panic!("poisoned scenario"));
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        pool.submit(move || {
            d.fetch_add(1, Ordering::AcqRel);
        });
        // Single worker: if the panic had killed it, the second job
        // would never run and completed_jobs would stay 0.
        while pool.completed_jobs() < 1 {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(done.load(Ordering::Acquire), 1);
        assert_eq!(pool.panicked_jobs(), 1);
        pool.shutdown();
    }

    #[test]
    fn fifo_claim_order_on_a_single_worker() {
        let pool = JobPool::new(&ParallelConfig::new(1));
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..8 {
            let order = Arc::clone(&order);
            pool.submit(move || order.lock().unwrap().push(i));
        }
        pool.shutdown();
        assert_eq!(*order.lock().unwrap(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn pool_reports_its_size() {
        let pool = JobPool::new(&ParallelConfig::new(3));
        assert_eq!(pool.threads(), 3);
        assert_eq!(pool.completed_jobs(), 0);
        pool.shutdown();
    }
}
