//! One shared grammar for `DYNAQUAR_*` environment overrides.
//!
//! Every knob the simulator reads from the environment — worker count,
//! stepping strategy, routing backend, shard count — used to parse its
//! variable with its own ad-hoc code, and the warning behaviour on a
//! typo'd value drifted between call sites. [`env_override`] is the one
//! funnel: unset and empty values defer silently, values the caller
//! maps to [`EnvParse::Default`] (like an explicit `auto`) defer
//! silently, and anything else earns exactly one process-wide warning
//! per variable naming the rejected value before falling back — a typo
//! must never silently change behaviour *without saying so*.
//!
//! The helper lives in this crate because it is the bottom of the
//! dependency stack: `dynaquar-topology` and `dynaquar-netsim` both
//! consume it, and `netsim::env` re-exports the full catalogue of
//! variables for discoverability.

use std::collections::BTreeSet;
use std::sync::{Mutex, OnceLock};

/// How a caller classifies the trimmed, non-empty value of its
/// environment variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnvParse<T> {
    /// A usable override; [`env_override`] returns it.
    Value(T),
    /// A value that explicitly requests the built-in default (for
    /// example `auto`); treated exactly like an unset variable.
    Default,
    /// An unrecognized value: fall back like [`EnvParse::Default`], but
    /// emit the one-shot warning naming it.
    Invalid,
}

/// Variables that have already warned this process. One entry per
/// variable, not per value: a runner looping over thousands of
/// simulations must not scroll the real diagnostics away.
fn warned() -> &'static Mutex<BTreeSet<&'static str>> {
    static WARNED: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();
    WARNED.get_or_init(|| Mutex::new(BTreeSet::new()))
}

/// Reads `var`, trims it, and classifies it through `parse`.
///
/// Returns `Some(value)` only for [`EnvParse::Value`]; unset, empty,
/// [`EnvParse::Default`], and [`EnvParse::Invalid`] all yield `None`,
/// and the invalid case additionally prints one uniform warning per
/// variable per process:
///
/// ```text
/// warning: ignoring invalid DYNAQUAR_THREADS="fast"; expected a positive worker count (falling back to available parallelism)
/// ```
///
/// `expected` supplies everything after `expected ` — name the accepted
/// grammar *and* the fallback so the user knows both what to type and
/// what they are getting instead.
pub fn env_override<T>(
    var: &'static str,
    expected: &str,
    parse: impl FnOnce(&str) -> EnvParse<T>,
) -> Option<T> {
    let raw = match std::env::var(var) {
        Ok(v) => v,
        Err(_) => return None,
    };
    let value = raw.trim();
    if value.is_empty() {
        return None;
    }
    match parse(value) {
        EnvParse::Value(v) => Some(v),
        EnvParse::Default => None,
        EnvParse::Invalid => {
            let mut seen = warned().lock().unwrap_or_else(|e| e.into_inner());
            if seen.insert(var) {
                eprintln!("warning: ignoring invalid {var}={value:?}; expected {expected}");
            }
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_positive(v: &str) -> EnvParse<usize> {
        if v.eq_ignore_ascii_case("auto") {
            return EnvParse::Default;
        }
        match v.parse::<usize>() {
            Ok(n) if n >= 1 => EnvParse::Value(n),
            _ => EnvParse::Invalid,
        }
    }

    // Each test owns a distinct variable name: tests in one binary share
    // the process environment.

    #[test]
    fn unset_and_empty_defer_silently() {
        assert_eq!(
            env_override("DYNAQUAR_TEST_UNSET", "a count", parse_positive),
            None
        );
        std::env::set_var("DYNAQUAR_TEST_EMPTY", "   ");
        assert_eq!(
            env_override("DYNAQUAR_TEST_EMPTY", "a count", parse_positive),
            None
        );
    }

    #[test]
    fn valid_values_come_back_trimmed() {
        std::env::set_var("DYNAQUAR_TEST_VALID", "  7 ");
        assert_eq!(
            env_override("DYNAQUAR_TEST_VALID", "a count", parse_positive),
            Some(7)
        );
    }

    #[test]
    fn explicit_auto_is_the_default_not_an_error() {
        std::env::set_var("DYNAQUAR_TEST_AUTO", "Auto");
        assert_eq!(
            env_override("DYNAQUAR_TEST_AUTO", "a count", parse_positive),
            None
        );
    }

    #[test]
    fn invalid_values_fall_back() {
        std::env::set_var("DYNAQUAR_TEST_BAD", "fast");
        assert_eq!(
            env_override("DYNAQUAR_TEST_BAD", "a count", parse_positive),
            None
        );
        // Second read still falls back (and the warned-set keeps it to
        // one line of stderr, though that part is not assertable here).
        assert_eq!(
            env_override("DYNAQUAR_TEST_BAD", "a count", parse_positive),
            None
        );
    }
}
