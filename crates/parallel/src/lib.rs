//! Deterministic parallel execution for ensemble workloads.
//!
//! The reproduction's results are averages over many independent seeded
//! runs ("each simulation is averaged over 10 individual runs", Section
//! 5.4) — embarrassingly parallel work whose *outputs must not depend on
//! how it was scheduled*. This crate provides the one primitive every
//! sweep driver shares: an **order-preserving parallel map** over a
//! scoped [`std::thread`] worker pool.
//!
//! Determinism contract: as long as the mapped closure is a pure
//! function of `(index, item)` — which per-seed RNG-stream derivation
//! guarantees for simulation runs — [`ordered_map`] returns bit-identical
//! output for **any** thread count, including 1. Workers race only for
//! *which* item to claim next (an atomic cursor); every result is written
//! back into its input slot, so scheduling order can never leak into the
//! output order.
//!
//! ```
//! use dynaquar_parallel::{ordered_map, ParallelConfig};
//!
//! let squares = ordered_map(&ParallelConfig::new(4), (0u64..100).collect(), |_, x| x * x);
//! assert_eq!(squares, (0u64..100).map(|x| x * x).collect::<Vec<_>>());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod env;
pub mod pool;

pub use env::{env_override, EnvParse};
pub use pool::JobPool;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Environment variable overriding the default worker count
/// (`ParallelConfig::from_env`). `1` forces the serial path; unset or
/// empty falls back to the machine's available parallelism. Any other
/// unparsable value also falls back, but emits a one-shot warning
/// naming the bad value — a typo must not silently change the pool
/// size.
pub const THREADS_ENV: &str = "DYNAQUAR_THREADS";

/// Worker-pool sizing for the deterministic parallel map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    threads: usize,
}

impl ParallelConfig {
    /// A pool of exactly `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        ParallelConfig {
            threads: threads.max(1),
        }
    }

    /// The serial path: one worker, no pool threads spawned.
    pub fn serial() -> Self {
        ParallelConfig::new(1)
    }

    /// One worker per hardware thread the OS reports.
    pub fn available() -> Self {
        ParallelConfig::new(
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// Pool sized from the [`THREADS_ENV`] environment variable, falling
    /// back to [`ParallelConfig::available`]. This is what every
    /// `run_averaged`-style entry point uses when the caller does not
    /// pass an explicit config, so a CI matrix over `DYNAQUAR_THREADS`
    /// exercises serial/parallel bit-identity end to end.
    pub fn from_env() -> Self {
        env_override(
            THREADS_ENV,
            "a positive integer worker count \
             (falling back to available parallelism)",
            |v| match v.parse::<usize>() {
                Ok(n) if n >= 1 => EnvParse::Value(ParallelConfig::new(n)),
                _ => EnvParse::Invalid,
            },
        )
        .unwrap_or_else(ParallelConfig::available)
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl Default for ParallelConfig {
    /// Defaults to [`ParallelConfig::from_env`].
    fn default() -> Self {
        ParallelConfig::from_env()
    }
}

/// Wall-clock provenance for one mapped item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ItemTiming {
    /// Input index of the item.
    pub index: usize,
    /// Pool worker (0-based) that executed it.
    pub worker: usize,
    /// Wall-clock time the closure spent on it.
    pub wall: Duration,
}

/// Utilization accounting for one pool worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerStats {
    /// Worker id, `0..threads`.
    pub worker: usize,
    /// Items this worker executed.
    pub items: usize,
    /// Total wall-clock time spent inside the closure.
    pub busy: Duration,
}

/// What a full [`ordered_map_report`] call observed: per-item timings
/// (in input order), per-worker utilization, and the end-to-end wall
/// clock of the map itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapReport {
    /// Per-item provenance, sorted by input index.
    pub timings: Vec<ItemTiming>,
    /// Per-worker accounting, sorted by worker id. Only workers that
    /// were actually spawned appear (never more than the item count).
    pub workers: Vec<WorkerStats>,
    /// Wall clock of the whole map, fan-out to last join.
    pub wall: Duration,
}

impl MapReport {
    /// Fraction of the map's wall clock each worker spent busy, by
    /// worker id — ~1.0 everywhere means the pool was saturated.
    pub fn utilization(&self) -> Vec<f64> {
        let total = self.wall.as_secs_f64();
        self.workers
            .iter()
            .map(|w| {
                if total > 0.0 {
                    (w.busy.as_secs_f64() / total).min(1.0)
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Mean of [`MapReport::utilization`] (0.0 for an empty pool).
    pub fn mean_utilization(&self) -> f64 {
        let u = self.utilization();
        if u.is_empty() {
            0.0
        } else {
            u.iter().sum::<f64>() / u.len() as f64
        }
    }
}

/// Maps `f` over `items` on a scoped worker pool, returning results in
/// **input order** regardless of thread count or scheduling.
///
/// `f` receives `(index, item)` and must be `Sync`; for a deterministic
/// result it must be a pure function of its arguments. A panic inside
/// `f` is propagated to the caller after the pool unwinds (callers that
/// need panics contained — like the netsim run supervisor — catch them
/// inside `f`).
pub fn ordered_map<T, R, F>(config: &ParallelConfig, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    ordered_map_report(config, items, f).0
}

/// Like [`ordered_map`], additionally returning the [`MapReport`]
/// provenance (per-item wall clock, per-worker utilization).
pub fn ordered_map_report<T, R, F>(
    config: &ParallelConfig,
    items: Vec<T>,
    f: F,
) -> (Vec<R>, MapReport)
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let workers = config.threads().min(n).max(1);
    let started = Instant::now();

    if workers <= 1 {
        // Serial fast path: no pool threads, same write-back discipline.
        let mut results = Vec::with_capacity(n);
        let mut timings = Vec::with_capacity(n);
        let mut busy = Duration::ZERO;
        for (index, item) in items.into_iter().enumerate() {
            let t0 = Instant::now();
            results.push(f(index, item));
            let wall = t0.elapsed();
            busy += wall;
            timings.push(ItemTiming {
                index,
                worker: 0,
                wall,
            });
        }
        let report = MapReport {
            timings,
            workers: vec![WorkerStats {
                worker: 0,
                items: n,
                busy,
            }],
            wall: started.elapsed(),
        };
        return (results, report);
    }

    // Each input sits in its own slot; workers claim the next index off
    // an atomic cursor, take the item, and write the result back into
    // the matching output slot. Output order therefore equals input
    // order by construction.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let out: Vec<Mutex<Option<(R, ItemTiming)>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let f = &f;
    let slots = &slots;
    let out = &out;
    let cursor = &cursor;

    let stats: Vec<WorkerStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|worker| {
                scope.spawn(move || {
                    let mut items_done = 0usize;
                    let mut busy = Duration::ZERO;
                    loop {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        if index >= n {
                            break;
                        }
                        let item = slots[index]
                            .lock()
                            .expect("item slot poisoned")
                            .take()
                            .expect("item claimed twice");
                        let t0 = Instant::now();
                        let result = f(index, item);
                        let wall = t0.elapsed();
                        busy += wall;
                        items_done += 1;
                        *out[index].lock().expect("result slot poisoned") = Some((
                            result,
                            ItemTiming {
                                index,
                                worker,
                                wall,
                            },
                        ));
                    }
                    WorkerStats {
                        worker,
                        items: items_done,
                        busy,
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(stats) => stats,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });

    let mut results = Vec::with_capacity(n);
    let mut timings = Vec::with_capacity(n);
    for slot in out {
        let (r, t) = slot
            .lock()
            .expect("result slot poisoned")
            .take()
            .expect("every slot filled before the pool joins");
        results.push(r);
        timings.push(t);
    }
    let report = MapReport {
        timings,
        workers: stats,
        wall: started.elapsed(),
    };
    (results, report)
}

/// Runs `f(part_index, &mut part)` over every part concurrently and
/// returns only when **all** of them have finished — a fork/join
/// barrier for intra-simulation sharding.
///
/// Where [`ordered_map`] parallelizes *across* independent simulations,
/// `join_parts` parallelizes *inside* one: the engine splits a phase's
/// mutable state into disjoint per-shard parts, fans the sweep out
/// here, and merges the parts in ascending part order afterwards. The
/// call itself is the tick barrier — nothing downstream of it can
/// observe a partially swept phase.
///
/// Determinism contract: each invocation of `f` may depend only on
/// `(part_index, part)` and shared immutable state. Under that contract
/// the parts' contents after the join are bit-identical for any
/// scheduling, so a caller that merges them in part order is
/// bit-identical to running `f` serially in part order.
///
/// Zero or one parts never spawn a thread (the one part runs on the
/// caller's stack), so a single-shard configuration stays on the
/// serial path by construction. A panic in any part propagates to the
/// caller after all threads unwind.
pub fn join_parts<T, F>(parts: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    match parts {
        [] => {}
        [only] => f(0, only),
        parts => {
            let f = &f;
            std::thread::scope(|scope| {
                let handles: Vec<_> = parts
                    .iter_mut()
                    .enumerate()
                    .map(|(index, part)| scope.spawn(move || f(index, part)))
                    .collect();
                for handle in handles {
                    if let Err(payload) = handle.join() {
                        std::panic::resume_unwind(payload);
                    }
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn config_clamps_to_one() {
        assert_eq!(ParallelConfig::new(0).threads(), 1);
        assert_eq!(ParallelConfig::serial().threads(), 1);
        assert!(ParallelConfig::available().threads() >= 1);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let (out, report) = ordered_map_report(&ParallelConfig::new(4), Vec::<u64>::new(), |_, x| x);
        assert!(out.is_empty());
        assert!(report.timings.is_empty());
        assert_eq!(report.workers.len(), 1);
        assert_eq!(report.workers[0].items, 0);
    }

    #[test]
    fn results_are_in_input_order_for_any_thread_count() {
        let input: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = input.iter().map(|&x| x.wrapping_mul(x) ^ 0xABCD).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = ordered_map(&ParallelConfig::new(threads), input.clone(), |_, x| {
                x.wrapping_mul(x) ^ 0xABCD
            });
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn index_argument_matches_input_position() {
        let got = ordered_map(&ParallelConfig::new(4), vec!["a", "b", "c", "d"], |i, s| {
            format!("{i}:{s}")
        });
        assert_eq!(got, vec!["0:a", "1:b", "2:c", "3:d"]);
    }

    #[test]
    fn report_covers_every_item_exactly_once() {
        let (_, report) =
            ordered_map_report(&ParallelConfig::new(3), (0..50u64).collect(), |_, x| x + 1);
        assert_eq!(report.timings.len(), 50);
        for (i, t) in report.timings.iter().enumerate() {
            assert_eq!(t.index, i);
            assert!(t.worker < 3);
        }
        let per_worker: usize = report.workers.iter().map(|w| w.items).sum();
        assert_eq!(per_worker, 50);
        assert!(report.workers.len() <= 3);
        assert!(report.mean_utilization() >= 0.0 && report.mean_utilization() <= 1.0);
    }

    #[test]
    fn pool_never_spawns_more_workers_than_items() {
        let (_, report) = ordered_map_report(&ParallelConfig::new(16), vec![1, 2, 3], |_, x| x);
        assert!(report.workers.len() <= 3);
    }

    #[test]
    fn panic_in_closure_propagates() {
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ordered_map(&ParallelConfig::new(2), vec![0, 1, 2, 3], |_, x| {
                if x == 2 {
                    panic!("injected");
                }
                x
            })
        }));
        assert!(caught.is_err());
    }

    #[test]
    fn join_parts_runs_every_part_exactly_once() {
        let mut parts: Vec<(usize, u64)> = (0..9).map(|i| (usize::MAX, i)).collect();
        join_parts(&mut parts, |index, part| {
            part.0 = index;
            part.1 = part.1.wrapping_mul(3) + 1;
        });
        for (i, part) in parts.iter().enumerate() {
            assert_eq!(part.0, i, "part saw the wrong index");
            assert_eq!(part.1, (i as u64).wrapping_mul(3) + 1);
        }
    }

    #[test]
    fn join_parts_handles_empty_and_singleton() {
        let mut none: Vec<u64> = vec![];
        join_parts(&mut none, |_, _| unreachable!());
        let mut one = vec![41u64];
        join_parts(&mut one, |index, part| {
            assert_eq!(index, 0);
            *part += 1;
        });
        assert_eq!(one, vec![42]);
    }

    #[test]
    fn join_parts_panic_propagates() {
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut parts = vec![0u64, 1, 2, 3];
            join_parts(&mut parts, |_, part| {
                if *part == 2 {
                    panic!("injected");
                }
            });
        }));
        assert!(caught.is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The barrier's determinism contract: per-part results depend
        /// only on (index, part), so any number of joins in any split
        /// equals the serial sweep.
        #[test]
        fn join_parts_matches_serial_sweep(
            items in prop::collection::vec(0u64..u64::MAX, 0..64),
        ) {
            let step = |i: usize, x: u64| {
                let mut z = x ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let expected: Vec<u64> =
                items.iter().enumerate().map(|(i, &x)| step(i, x)).collect();
            let mut parts = items;
            join_parts(&mut parts, |i, x| *x = step(i, *x));
            prop_assert_eq!(parts, expected);
        }

        /// Bit-identical output for 1, 2, and 8 workers over arbitrary
        /// inputs — the determinism contract the netsim runner builds on.
        #[test]
        fn ordered_map_is_schedule_independent(
            items in prop::collection::vec(0u64..u64::MAX, 0..120),
        ) {
            let f = |i: usize, x: u64| {
                let mut z = x ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z ^ (z >> 31)
            };
            let serial = ordered_map(&ParallelConfig::new(1), items.clone(), f);
            let two = ordered_map(&ParallelConfig::new(2), items.clone(), f);
            let eight = ordered_map(&ParallelConfig::new(8), items, f);
            prop_assert_eq!(&serial, &two);
            prop_assert_eq!(&serial, &eight);
        }
    }
}
